package types

import (
	"errors"
	"fmt"
	"math/big"
	"sync/atomic"

	"bitcoinng/internal/crypto"
	"bitcoinng/internal/wire"
)

// BlockKind discriminates the block variants carried on a chain.
type BlockKind uint8

// Block kinds.
const (
	KindPow   BlockKind = iota // Bitcoin proof-of-work block
	KindKey                    // Bitcoin-NG key block (leader election, §4.1)
	KindMicro                  // Bitcoin-NG microblock (ledger entries, §4.2)
)

// String returns the kind name.
func (k BlockKind) String() string {
	switch k {
	case KindPow:
		return "pow"
	case KindKey:
		return "key"
	case KindMicro:
		return "micro"
	default:
		return fmt.Sprintf("blockkind(%d)", uint8(k))
	}
}

// Block is the interface the chain store and gossip layer operate on. All
// three concrete block types implement it.
type Block interface {
	wire.Encoder

	// Hash returns the block identifier: the hash of the header.
	Hash() crypto.Hash
	// PrevHash returns the identifier of the predecessor block.
	PrevHash() crypto.Hash
	// Kind returns the block variant.
	Kind() BlockKind
	// Time returns the block timestamp in Unix nanoseconds ("the current
	// GMT time" of §4.1/§4.2, at nanosecond resolution for the simulator).
	Time() int64
	// Work returns the expected hash evaluations the block's proof of work
	// represents; zero for microblocks, which carry no weight (§4.2).
	Work() *big.Int
	// Transactions returns the ledger entries the block carries.
	Transactions() []*Transaction
	// WireSize returns the serialized size in bytes; the network model
	// charges this when the block crosses a link.
	WireSize() int
}

// Block validation errors.
var (
	ErrBadPoW        = errors.New("types: header hash above target")
	ErrBadMerkleRoot = errors.New("types: merkle root does not match transactions")
	ErrNoCoinbase    = errors.New("types: first transaction must be the coinbase")
	ErrExtraCoinbase = errors.New("types: coinbase outside first position")
	ErrBadSignature  = errors.New("types: microblock signature invalid")
)

var zeroWork = new(big.Int)

// wfVerdict is an atomically published well-formedness verdict. Block caches
// are atomic because the sharded event loop lets several shard goroutines
// validate the same shared block object concurrently: every verdict is a pure
// function of the immutable block, so racing fills compute equal values and
// either store wins.
type wfVerdict struct {
	err error
}

// microVerdict caches a microblock verdict together with the leader key it
// was checked under.
type microVerdict struct {
	key crypto.PublicKey
	err error
}

// checkTxSet validates the transaction list shared by PoW and key blocks:
// first transaction is the coinbase, no other coinbases, all well-formed,
// and the Merkle root matches.
func checkTxSet(txs []*Transaction, root crypto.Hash) error {
	if len(txs) == 0 || txs[0].Kind != TxCoinbase {
		return ErrNoCoinbase
	}
	for i, tx := range txs {
		if i > 0 && tx.Kind == TxCoinbase {
			return fmt.Errorf("%w: position %d", ErrExtraCoinbase, i)
		}
		if err := tx.CheckWellFormed(); err != nil {
			return fmt.Errorf("tx %d: %w", i, err)
		}
	}
	if crypto.MerkleRoot(TxIDs(txs)) != root {
		return ErrBadMerkleRoot
	}
	return nil
}

func encodeTxs(w *wire.Writer, txs []*Transaction) {
	w.VarInt(uint64(len(txs)))
	for _, tx := range txs {
		tx.EncodeWire(w)
	}
}

func decodeTxs(r *wire.Reader) []*Transaction {
	n := r.Length(wire.MaxListLen)
	if r.Err() != nil {
		return nil
	}
	txs := make([]*Transaction, n)
	for i := range txs {
		txs[i] = new(Transaction)
		txs[i].DecodeWire(r)
	}
	return txs
}

// PowHeader is a Bitcoin block header (§3: previous-block reference, Merkle
// root of the transactions, time, difficulty target, nonce).
type PowHeader struct {
	Prev       crypto.Hash
	MerkleRoot crypto.Hash
	TimeNanos  int64
	Target     crypto.CompactTarget
	Nonce      uint64
}

// EncodeWire implements wire.Encoder.
func (h *PowHeader) EncodeWire(w *wire.Writer) {
	w.Bytes32(h.Prev)
	w.Bytes32(h.MerkleRoot)
	w.Int64(h.TimeNanos)
	w.Uint32(uint32(h.Target))
	w.Uint64(h.Nonce)
}

// DecodeWire implements wire.Decoder.
func (h *PowHeader) DecodeWire(r *wire.Reader) {
	h.Prev = r.Bytes32()
	h.MerkleRoot = r.Bytes32()
	h.TimeNanos = r.Int64()
	h.Target = crypto.CompactTarget(r.Uint32())
	h.Nonce = r.Uint64()
}

// Hash returns the double-SHA256 of the serialized header.
func (h *PowHeader) Hash() crypto.Hash { return crypto.HashBytes(wire.Encode(h)) }

// PowBlock is a full Bitcoin block.
type PowBlock struct {
	Header PowHeader
	Txs    []*Transaction

	// SimulatedPoW marks blocks produced by the simulated miner (§7
	// "Simulated Mining"): the experiment controller triggers generation
	// and difficulty validation is skipped, exactly like the regtest mode
	// the paper uses. Live blocks have it false and must satisfy the
	// target. The flag is part of the serialization so a node processes
	// both identically otherwise.
	SimulatedPoW bool

	cachedHash atomic.Pointer[crypto.Hash]
	cachedSize atomic.Int32
	wf         atomic.Pointer[wfVerdict]
}

// EncodeWire implements wire.Encoder.
func (b *PowBlock) EncodeWire(w *wire.Writer) {
	b.Header.EncodeWire(w)
	w.Bool(b.SimulatedPoW)
	encodeTxs(w, b.Txs)
}

// DecodeWire implements wire.Decoder.
func (b *PowBlock) DecodeWire(r *wire.Reader) {
	b.Header.DecodeWire(r)
	b.SimulatedPoW = r.Bool()
	b.Txs = decodeTxs(r)
	b.cachedHash.Store(nil)
	b.cachedSize.Store(0)
	b.wf.Store(nil)
}

// Hash implements Block; the result is cached.
func (b *PowBlock) Hash() crypto.Hash {
	if p := b.cachedHash.Load(); p != nil {
		return *p
	}
	h := b.Header.Hash()
	b.cachedHash.Store(&h)
	return h
}

// PrevHash implements Block.
func (b *PowBlock) PrevHash() crypto.Hash { return b.Header.Prev }

// Kind implements Block.
func (b *PowBlock) Kind() BlockKind { return KindPow }

// Time implements Block.
func (b *PowBlock) Time() int64 { return b.Header.TimeNanos }

// Work implements Block.
func (b *PowBlock) Work() *big.Int { return crypto.WorkForTarget(b.Header.Target) }

// Transactions implements Block.
func (b *PowBlock) Transactions() []*Transaction { return b.Txs }

// WireSize implements Block; the result is cached.
func (b *PowBlock) WireSize() int {
	if s := b.cachedSize.Load(); s != 0 {
		return int(s)
	}
	s := len(wire.Encode(b))
	b.cachedSize.Store(int32(s))
	return s
}

// CheckWellFormed validates the block against its own header: transaction
// set shape, Merkle root, and (for live blocks) proof of work. The verdict
// is cached: simulated nodes share block objects, so the expensive checks
// run once per network rather than once per node.
func (b *PowBlock) CheckWellFormed() error {
	if v := b.wf.Load(); v != nil {
		return v.err
	}
	var err error
	if !b.SimulatedPoW && !crypto.CheckProofOfWork(b.Hash(), b.Header.Target) {
		err = ErrBadPoW
	} else {
		err = checkTxSet(b.Txs, b.Header.MerkleRoot)
	}
	b.wf.Store(&wfVerdict{err: err})
	return err
}

// KeyBlockHeader is a Bitcoin-NG key block header (§4.1): like a Bitcoin
// header plus the public key that signs the subsequent microblocks.
type KeyBlockHeader struct {
	Prev       crypto.Hash
	MerkleRoot crypto.Hash
	TimeNanos  int64
	Target     crypto.CompactTarget
	Nonce      uint64
	LeaderKey  crypto.PublicKey
}

// EncodeWire implements wire.Encoder.
func (h *KeyBlockHeader) EncodeWire(w *wire.Writer) {
	w.Bytes32(h.Prev)
	w.Bytes32(h.MerkleRoot)
	w.Int64(h.TimeNanos)
	w.Uint32(uint32(h.Target))
	w.Uint64(h.Nonce)
	w.Raw(h.LeaderKey[:])
}

// DecodeWire implements wire.Decoder.
func (h *KeyBlockHeader) DecodeWire(r *wire.Reader) {
	h.Prev = r.Bytes32()
	h.MerkleRoot = r.Bytes32()
	h.TimeNanos = r.Int64()
	h.Target = crypto.CompactTarget(r.Uint32())
	h.Nonce = r.Uint64()
	copy(h.LeaderKey[:], r.Raw(crypto.PublicKeySize))
}

// Hash returns the double-SHA256 of the serialized header.
func (h *KeyBlockHeader) Hash() crypto.Hash { return crypto.HashBytes(wire.Encode(h)) }

// KeyBlock is a full Bitcoin-NG key block. Its transactions are the coinbase
// (paying the previous epoch's fee split, §4.4) and any poison transactions.
type KeyBlock struct {
	Header       KeyBlockHeader
	Txs          []*Transaction
	SimulatedPoW bool

	cachedHash atomic.Pointer[crypto.Hash]
	cachedSize atomic.Int32
	wf         atomic.Pointer[wfVerdict]
}

// EncodeWire implements wire.Encoder.
func (b *KeyBlock) EncodeWire(w *wire.Writer) {
	b.Header.EncodeWire(w)
	w.Bool(b.SimulatedPoW)
	encodeTxs(w, b.Txs)
}

// DecodeWire implements wire.Decoder.
func (b *KeyBlock) DecodeWire(r *wire.Reader) {
	b.Header.DecodeWire(r)
	b.SimulatedPoW = r.Bool()
	b.Txs = decodeTxs(r)
	b.cachedHash.Store(nil)
	b.cachedSize.Store(0)
	b.wf.Store(nil)
}

// Hash implements Block; the result is cached.
func (b *KeyBlock) Hash() crypto.Hash {
	if p := b.cachedHash.Load(); p != nil {
		return *p
	}
	h := b.Header.Hash()
	b.cachedHash.Store(&h)
	return h
}

// PrevHash implements Block.
func (b *KeyBlock) PrevHash() crypto.Hash { return b.Header.Prev }

// Kind implements Block.
func (b *KeyBlock) Kind() BlockKind { return KindKey }

// Time implements Block.
func (b *KeyBlock) Time() int64 { return b.Header.TimeNanos }

// Work implements Block.
func (b *KeyBlock) Work() *big.Int { return crypto.WorkForTarget(b.Header.Target) }

// Transactions implements Block.
func (b *KeyBlock) Transactions() []*Transaction { return b.Txs }

// WireSize implements Block; the result is cached.
func (b *KeyBlock) WireSize() int {
	if s := b.cachedSize.Load(); s != 0 {
		return int(s)
	}
	s := len(wire.Encode(b))
	b.cachedSize.Store(int32(s))
	return s
}

// CheckWellFormed validates the key block against its own header. The
// verdict is cached (see PowBlock.CheckWellFormed).
func (b *KeyBlock) CheckWellFormed() error {
	if v := b.wf.Load(); v != nil {
		return v.err
	}
	var err error
	if !b.SimulatedPoW && !crypto.CheckProofOfWork(b.Hash(), b.Header.Target) {
		err = ErrBadPoW
	} else {
		err = checkTxSet(b.Txs, b.Header.MerkleRoot)
	}
	b.wf.Store(&wfVerdict{err: err})
	return err
}

// MicroBlockHeader is a Bitcoin-NG microblock header (§4.2): predecessor
// reference, time, hash of the ledger entries, and the leader's signature.
type MicroBlockHeader struct {
	Prev      crypto.Hash
	TxRoot    crypto.Hash
	TimeNanos int64
	Signature crypto.Signature
}

// EncodeWire implements wire.Encoder.
func (h *MicroBlockHeader) EncodeWire(w *wire.Writer) {
	w.Bytes32(h.Prev)
	w.Bytes32(h.TxRoot)
	w.Int64(h.TimeNanos)
	w.Raw(h.Signature[:])
}

// DecodeWire implements wire.Decoder.
func (h *MicroBlockHeader) DecodeWire(r *wire.Reader) {
	h.Prev = r.Bytes32()
	h.TxRoot = r.Bytes32()
	h.TimeNanos = r.Int64()
	copy(h.Signature[:], r.Raw(crypto.SignatureSize))
}

// Hash returns the double-SHA256 of the serialized header (including the
// signature, so the ID commits to it).
func (h *MicroBlockHeader) Hash() crypto.Hash { return crypto.HashBytes(wire.Encode(h)) }

// SigHash returns the digest the leader signs: the header serialized with
// the signature zeroed.
func (h *MicroBlockHeader) SigHash() crypto.Hash {
	c := *h
	c.Signature = crypto.Signature{}
	return crypto.HashBytes(wire.Encode(&c))
}

// Sign fills in the header signature using the leader's private key, which
// must match the public key in the epoch's key block.
func (h *MicroBlockHeader) Sign(priv *crypto.PrivateKey) {
	sighash := h.SigHash()
	h.Signature = priv.Sign(sighash[:])
}

// VerifySignature reports whether the header is signed by leaderKey.
func (h *MicroBlockHeader) VerifySignature(leaderKey crypto.PublicKey) bool {
	sighash := h.SigHash()
	return leaderKey.Verify(sighash[:], h.Signature)
}

// MicroBlock is a full Bitcoin-NG microblock: ledger entries plus a signed
// header. Microblocks contain no proof of work and carry no chain weight.
type MicroBlock struct {
	Header MicroBlockHeader
	Txs    []*Transaction

	cachedHash atomic.Pointer[crypto.Hash]
	cachedSize atomic.Int32
	wf         atomic.Pointer[microVerdict]
}

// EncodeWire implements wire.Encoder.
func (b *MicroBlock) EncodeWire(w *wire.Writer) {
	b.Header.EncodeWire(w)
	encodeTxs(w, b.Txs)
}

// DecodeWire implements wire.Decoder.
func (b *MicroBlock) DecodeWire(r *wire.Reader) {
	b.Header.DecodeWire(r)
	b.Txs = decodeTxs(r)
	b.cachedHash.Store(nil)
	b.cachedSize.Store(0)
	b.wf.Store(nil)
}

// Hash implements Block; the result is cached.
func (b *MicroBlock) Hash() crypto.Hash {
	if p := b.cachedHash.Load(); p != nil {
		return *p
	}
	h := b.Header.Hash()
	b.cachedHash.Store(&h)
	return h
}

// PrevHash implements Block.
func (b *MicroBlock) PrevHash() crypto.Hash { return b.Header.Prev }

// Kind implements Block.
func (b *MicroBlock) Kind() BlockKind { return KindMicro }

// Time implements Block.
func (b *MicroBlock) Time() int64 { return b.Header.TimeNanos }

// Work implements Block: microblocks carry no weight (§4.2, critical for
// selfish-mining resistance, §5.1).
func (b *MicroBlock) Work() *big.Int { return zeroWork }

// Transactions implements Block.
func (b *MicroBlock) Transactions() []*Transaction { return b.Txs }

// WireSize implements Block; the result is cached.
func (b *MicroBlock) WireSize() int {
	if s := b.cachedSize.Load(); s != 0 {
		return int(s)
	}
	s := len(wire.Encode(b))
	b.cachedSize.Store(int32(s))
	return s
}

// CheckWellFormed validates entries against the header's TxRoot and checks
// the signature under leaderKey (the public key from the latest key block
// on the microblock's chain, §4.2). Microblocks carry no coinbase. The
// verdict is cached per leader key (see PowBlock.CheckWellFormed).
func (b *MicroBlock) CheckWellFormed(leaderKey crypto.PublicKey) error {
	if v := b.wf.Load(); v != nil && v.key == leaderKey {
		return v.err
	}
	err := b.checkWellFormed(leaderKey)
	b.wf.Store(&microVerdict{key: leaderKey, err: err})
	return err
}

func (b *MicroBlock) checkWellFormed(leaderKey crypto.PublicKey) error {
	if !b.Header.VerifySignature(leaderKey) {
		return ErrBadSignature
	}
	for i, tx := range b.Txs {
		if tx.Kind == TxCoinbase {
			return fmt.Errorf("%w: position %d", ErrExtraCoinbase, i)
		}
		if err := tx.CheckWellFormed(); err != nil {
			return fmt.Errorf("tx %d: %w", i, err)
		}
	}
	if crypto.MerkleRoot(TxIDs(b.Txs)) != b.Header.TxRoot {
		return ErrBadMerkleRoot
	}
	return nil
}

// DecodeBlockMsg decodes a block received with the given message type.
func DecodeBlockMsg(t wire.MsgType, payload []byte) (Block, error) {
	var b Block
	var d wire.Decoder
	switch t {
	case wire.MsgBlock:
		pb := new(PowBlock)
		b, d = pb, pb
	case wire.MsgKeyBlock:
		kb := new(KeyBlock)
		b, d = kb, kb
	case wire.MsgMicroBlock:
		mb := new(MicroBlock)
		b, d = mb, mb
	default:
		return nil, fmt.Errorf("types: message type %v is not a block", t)
	}
	if err := wire.Decode(payload, d); err != nil {
		return nil, err
	}
	return b, nil
}

// BlockMsgType returns the wire message type used to relay b.
func BlockMsgType(b Block) wire.MsgType {
	switch b.Kind() {
	case KindKey:
		return wire.MsgKeyBlock
	case KindMicro:
		return wire.MsgMicroBlock
	default:
		return wire.MsgBlock
	}
}
