package types

import (
	"testing"

	"bitcoinng/internal/crypto"
	"bitcoinng/internal/wire"
)

func makeCoinbase(to crypto.Address, value Amount, height uint64) *Transaction {
	return &Transaction{
		Kind:    TxCoinbase,
		Outputs: []TxOutput{{Value: value, To: to}},
		Height:  height,
	}
}

func makePowBlock(t *testing.T, prev crypto.Hash, height uint64) *PowBlock {
	t.Helper()
	txs := []*Transaction{makeCoinbase(crypto.Address{1}, 50, height)}
	return &PowBlock{
		Header: PowHeader{
			Prev:       prev,
			MerkleRoot: crypto.MerkleRoot(TxIDs(txs)),
			TimeNanos:  int64(height) * 1e9,
			Target:     crypto.EasiestTarget,
		},
		Txs:          txs,
		SimulatedPoW: true,
	}
}

func TestPowBlockRoundTrip(t *testing.T) {
	b := makePowBlock(t, crypto.HashBytes([]byte("prev")), 1)
	var out PowBlock
	if err := wire.Decode(wire.Encode(b), &out); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if out.Hash() != b.Hash() {
		t.Error("round trip changed hash")
	}
	if err := out.CheckWellFormed(); err != nil {
		t.Errorf("decoded block invalid: %v", err)
	}
	if out.WireSize() != b.WireSize() {
		t.Error("round trip changed wire size")
	}
}

func TestPowBlockValidation(t *testing.T) {
	b := makePowBlock(t, crypto.ZeroHash, 1)
	if err := b.CheckWellFormed(); err != nil {
		t.Fatalf("valid block rejected: %v", err)
	}

	// Wrong merkle root.
	bad := makePowBlock(t, crypto.ZeroHash, 1)
	bad.Header.MerkleRoot = crypto.Hash{1}
	if err := bad.CheckWellFormed(); err == nil {
		t.Error("bad merkle root accepted")
	}

	// Missing coinbase.
	bad = makePowBlock(t, crypto.ZeroHash, 1)
	bad.Txs = nil
	if err := bad.CheckWellFormed(); err == nil {
		t.Error("empty tx set accepted")
	}

	// Second coinbase.
	bad = makePowBlock(t, crypto.ZeroHash, 1)
	bad.Txs = append(bad.Txs, makeCoinbase(crypto.Address{2}, 50, 1))
	bad.Header.MerkleRoot = crypto.MerkleRoot(TxIDs(bad.Txs))
	if err := bad.CheckWellFormed(); err == nil {
		t.Error("duplicate coinbase accepted")
	}

	// Live block must satisfy proof of work: an impossible target fails.
	bad = makePowBlock(t, crypto.ZeroHash, 1)
	bad.SimulatedPoW = false
	bad.Header.Target = crypto.CompactTarget(0x01000001) // near-zero target
	if err := bad.CheckWellFormed(); err == nil {
		t.Error("live block without PoW accepted")
	}
}

func TestKeyBlockRoundTripAndLeaderKey(t *testing.T) {
	leader := testKey(t, 11)
	txs := []*Transaction{makeCoinbase(leader.Public().Addr(), 50, 2)}
	kb := &KeyBlock{
		Header: KeyBlockHeader{
			Prev:       crypto.HashBytes([]byte("tip")),
			MerkleRoot: crypto.MerkleRoot(TxIDs(txs)),
			TimeNanos:  7e9,
			Target:     crypto.EasiestTarget,
			LeaderKey:  leader.Public(),
		},
		Txs:          txs,
		SimulatedPoW: true,
	}
	if err := kb.CheckWellFormed(); err != nil {
		t.Fatalf("valid key block rejected: %v", err)
	}
	var out KeyBlock
	if err := wire.Decode(wire.Encode(kb), &out); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if out.Hash() != kb.Hash() {
		t.Error("round trip changed hash")
	}
	if out.Header.LeaderKey != leader.Public() {
		t.Error("leader key lost in round trip")
	}
	if out.Kind() != KindKey {
		t.Errorf("Kind = %v", out.Kind())
	}
	if out.Work().Sign() <= 0 {
		t.Error("key block carries no work")
	}
}

func TestMicroBlockSignatureAndWeight(t *testing.T) {
	leader := testKey(t, 12)
	attacker := testKey(t, 13)
	tx := makeSignedTx(t, leader, OutPoint{Index: 9}, 5, 5)
	mb := &MicroBlock{
		Header: MicroBlockHeader{
			Prev:      crypto.HashBytes([]byte("keyblock")),
			TxRoot:    crypto.MerkleRoot(TxIDs([]*Transaction{tx})),
			TimeNanos: 8e9,
		},
		Txs: []*Transaction{tx},
	}
	mb.Header.Sign(leader)

	if err := mb.CheckWellFormed(leader.Public()); err != nil {
		t.Fatalf("valid microblock rejected: %v", err)
	}
	// Wrong leader key must fail: only the epoch leader may extend (§4.2).
	if err := mb.CheckWellFormed(attacker.Public()); err == nil {
		t.Error("microblock accepted under wrong leader key")
	}
	// Microblocks carry zero weight (§4.2).
	if mb.Work().Sign() != 0 {
		t.Error("microblock carries weight")
	}
	// A coinbase inside a microblock is invalid.
	bad := &MicroBlock{
		Header: MicroBlockHeader{Prev: mb.Header.Prev},
		Txs:    []*Transaction{makeCoinbase(crypto.Address{3}, 50, 1)},
	}
	bad.Header.TxRoot = crypto.MerkleRoot(TxIDs(bad.Txs))
	bad.Header.Sign(leader)
	if err := bad.CheckWellFormed(leader.Public()); err == nil {
		t.Error("microblock with coinbase accepted")
	}
}

func TestMicroBlockRoundTrip(t *testing.T) {
	leader := testKey(t, 14)
	mb := &MicroBlock{
		Header: MicroBlockHeader{
			Prev:      crypto.HashBytes([]byte("k")),
			TimeNanos: 1e9,
		},
	}
	mb.Header.TxRoot = crypto.MerkleRoot(nil)
	mb.Header.Sign(leader)
	var out MicroBlock
	if err := wire.Decode(wire.Encode(mb), &out); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if out.Hash() != mb.Hash() {
		t.Error("round trip changed hash")
	}
	if !out.Header.VerifySignature(leader.Public()) {
		t.Error("signature lost in round trip")
	}
}

func TestMicroBlockHashCommitsToSignature(t *testing.T) {
	leaderA := testKey(t, 15)
	leaderB := testKey(t, 16)
	hdr := MicroBlockHeader{Prev: crypto.Hash{1}, TimeNanos: 5}
	a := hdr
	a.Sign(leaderA)
	b := hdr
	b.Sign(leaderB)
	if a.Hash() == b.Hash() {
		t.Error("different signatures produced the same microblock hash")
	}
	if a.SigHash() != b.SigHash() {
		t.Error("SigHash must not depend on the signature")
	}
}

func TestDecodeBlockMsg(t *testing.T) {
	pb := makePowBlock(t, crypto.ZeroHash, 1)
	payload := wire.Encode(pb)

	got, err := DecodeBlockMsg(wire.MsgBlock, payload)
	if err != nil {
		t.Fatalf("DecodeBlockMsg: %v", err)
	}
	if got.Hash() != pb.Hash() {
		t.Error("decoded block hash mismatch")
	}
	if _, err := DecodeBlockMsg(wire.MsgPing, payload); err == nil {
		t.Error("non-block message type accepted")
	}
	if _, err := DecodeBlockMsg(wire.MsgMicroBlock, payload); err == nil {
		t.Error("pow payload decoded as microblock")
	}
	if BlockMsgType(pb) != wire.MsgBlock {
		t.Error("BlockMsgType(pow) wrong")
	}
}

func TestGenesisDeterminism(t *testing.T) {
	spec := GenesisSpec{
		TimeNanos: 42,
		Target:    crypto.EasiestTarget,
		Payouts:   []TxOutput{{Value: 1000, To: crypto.Address{7}}},
	}
	a := GenesisBlock(spec)
	b := GenesisBlock(spec)
	if a.Hash() != b.Hash() {
		t.Error("same spec produced different genesis blocks")
	}
	if err := a.CheckWellFormed(); err != nil {
		t.Errorf("genesis invalid: %v", err)
	}
	if !a.PrevHash().IsZero() {
		t.Error("genesis has a predecessor")
	}
	// Different payouts, different genesis.
	spec.Payouts[0].Value = 2000
	if GenesisBlock(spec).Hash() == a.Hash() {
		t.Error("different spec produced the same genesis")
	}
	// Empty payouts still yields a valid block.
	empty := GenesisBlock(GenesisSpec{Target: crypto.EasiestTarget})
	if err := empty.CheckWellFormed(); err != nil {
		t.Errorf("empty genesis invalid: %v", err)
	}
}

func TestSplitFeeConserved(t *testing.T) {
	p := DefaultParams()
	for _, fee := range []Amount{0, 1, 2, 3, 99, 100, 12345, -5} {
		leader, next := p.SplitFee(fee)
		if fee <= 0 {
			if leader != 0 || next != 0 {
				t.Errorf("SplitFee(%d) = %d,%d", fee, leader, next)
			}
			continue
		}
		if leader+next != fee {
			t.Errorf("SplitFee(%d): %d+%d != %d", fee, leader, next, fee)
		}
		if leader < 0 || next < 0 {
			t.Errorf("SplitFee(%d) negative share", fee)
		}
	}
	// 40% of 100 is exactly 40.
	leader, next := p.SplitFee(100)
	if leader != 40 || next != 60 {
		t.Errorf("SplitFee(100) = %d,%d, want 40,60", leader, next)
	}
}
