package types

import "time"

// Params carries the consensus parameters shared by the protocols. The zero
// value is not useful; start from DefaultParams and override per experiment.
type Params struct {
	// CoinbaseMaturity is the number of blocks a coinbase output must be
	// buried under before it can be spent (§4.4: "a maturity period of 100
	// blocks, to avoid non-mergeable transactions following a fork").
	CoinbaseMaturity int

	// Subsidy is the fixed reward minted by each PoW/key block ("each key
	// block entitles its generator a set amount", §4.4).
	Subsidy Amount

	// LeaderFeeFrac is the fraction of each entry's fee earned by the
	// leader that places it in a microblock; the remainder goes to the
	// next leader. The paper fixes 40%/60% and derives 37% < r < 43% for
	// incentive compatibility at α = 1/4 (§5.1).
	LeaderFeeFrac float64

	// PoisonRewardFrac is the fraction of a revoked leader's revenue the
	// poisoner collects, e.g. 5% (§4.5).
	PoisonRewardFrac float64

	// MaxBlockSize bounds the serialized size of PoW blocks and
	// microblocks ("The size of microblocks is bounded by a predefined
	// maximum", §4.2).
	MaxBlockSize int

	// TargetBlockInterval is the average PoW block interval the difficulty
	// adjustment aims for — Bitcoin block interval, or Bitcoin-NG key
	// block interval.
	TargetBlockInterval time.Duration

	// MicroblockInterval is the rate at which a Bitcoin-NG leader issues
	// microblocks.
	MicroblockInterval time.Duration

	// MinMicroblockInterval is the minimum spacing between a microblock
	// and its predecessor; a smaller gap (or a future timestamp) makes the
	// microblock invalid, which stops a leader from swamping the system
	// (§4.2).
	MinMicroblockInterval time.Duration

	// RetargetWindow is the number of PoW/key blocks between difficulty
	// adjustments (Bitcoin uses 2016; experiments use smaller windows).
	RetargetWindow int

	// RandomTieBreak selects the fork-choice tie rule: true picks a
	// heaviest branch uniformly at random (the paper's recommendation,
	// following [21]); false keeps the first-seen branch like the
	// operational client.
	RandomTieBreak bool

	// FetchTimeout is how long the gossip layer waits for a requested
	// block before re-requesting it from the next peer that announced it.
	// It is relay tuning, not consensus; scenarios that scale latency by
	// large factors (LatencySpike) should scale it too, or fetches
	// silently starve while retries hammer dead peers. Zero takes the
	// 20-second default.
	FetchTimeout time.Duration

	// TxBatchInterval is how long the gossip layer coalesces loose
	// transactions per peer before flushing them in one txbatch message.
	// Batching amortizes the per-message envelope and event overhead under
	// sustained load; zero relays each transaction immediately (classic
	// behavior). Relay tuning, not consensus.
	TxBatchInterval time.Duration
}

// DefaultParams mirrors the paper's experimental configuration: 100-second
// key block intervals, 10-second microblocks, 100 kbit/s-friendly block
// sizes, and the 40/60 fee split.
func DefaultParams() Params {
	return Params{
		CoinbaseMaturity:      100,
		Subsidy:               50 * 100_000_000,
		LeaderFeeFrac:         0.40,
		PoisonRewardFrac:      0.05,
		MaxBlockSize:          1_000_000,
		TargetBlockInterval:   100 * time.Second,
		MicroblockInterval:    10 * time.Second,
		MinMicroblockInterval: 10 * time.Millisecond,
		RetargetWindow:        2016,
		RandomTieBreak:        true,
		FetchTimeout:          20 * time.Second,
	}
}

// SplitFee divides fee between the leader that serialized the entry and the
// next leader, per the LeaderFeeFrac split. The leader share rounds down;
// the remainder goes to the next leader so no value is created or lost.
func (p Params) SplitFee(fee Amount) (leader, next Amount) {
	if fee <= 0 {
		return 0, 0
	}
	leader = Amount(float64(fee) * p.LeaderFeeFrac)
	if leader > fee {
		leader = fee
	}
	return leader, fee - leader
}
