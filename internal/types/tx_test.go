package types

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bitcoinng/internal/crypto"
	"bitcoinng/internal/wire"
)

func testKey(t testing.TB, seed int64) *crypto.PrivateKey {
	t.Helper()
	k, err := crypto.GenerateKey(rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("GenerateKey: %v", err)
	}
	return k
}

// makeSignedTx builds a 1-input, 2-output regular transaction signed by key.
func makeSignedTx(t testing.TB, key *crypto.PrivateKey, prev OutPoint, pay, change Amount) *Transaction {
	t.Helper()
	tx := &Transaction{
		Kind:   TxRegular,
		Inputs: []TxInput{{Prev: prev}},
		Outputs: []TxOutput{
			{Value: pay, To: crypto.Address(crypto.HashBytes([]byte("dest")))},
			{Value: change, To: key.Public().Addr()},
		},
	}
	tx.SignInput(0, key)
	return tx
}

func TestTransactionRoundTrip(t *testing.T) {
	key := testKey(t, 1)
	tx := makeSignedTx(t, key, OutPoint{TxID: crypto.HashBytes([]byte("prev")), Index: 3}, 70, 25)
	// Padding is covered by the signature, so set it and re-sign.
	tx.Padding = []byte{1, 2, 3}
	tx.SignInput(0, key)

	b := wire.Encode(tx)
	var out Transaction
	if err := wire.Decode(b, &out); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if out.ID() != tx.ID() {
		t.Error("round trip changed the transaction ID")
	}
	if err := out.CheckWellFormed(); err != nil {
		t.Errorf("decoded tx invalid: %v", err)
	}
}

func TestTransactionIDCommitsToEverything(t *testing.T) {
	key := testKey(t, 2)
	base := makeSignedTx(t, key, OutPoint{Index: 1}, 10, 5)
	id := base.ID()

	mutations := []func(*Transaction){
		func(tx *Transaction) { tx.Outputs[0].Value++ },
		func(tx *Transaction) { tx.Outputs[0].To = crypto.Address{9} },
		func(tx *Transaction) { tx.Inputs[0].Prev.Index++ },
		func(tx *Transaction) { tx.Padding = append(tx.Padding, 0) },
		func(tx *Transaction) { tx.Height++ },
	}
	for i, mutate := range mutations {
		cp := Transaction{
			Kind:     base.Kind,
			Inputs:   append([]TxInput(nil), base.Inputs...),
			Outputs:  append([]TxOutput(nil), base.Outputs...),
			Height:   base.Height,
			Evidence: base.Evidence,
			Padding:  append([]byte(nil), base.Padding...),
		}
		mutate(&cp)
		if cp.ID() == id {
			t.Errorf("mutation %d did not change the ID", i)
		}
	}
}

func TestSignatureCoversOutputs(t *testing.T) {
	key := testKey(t, 3)
	tx := makeSignedTx(t, key, OutPoint{Index: 0}, 50, 50)
	if err := tx.CheckWellFormed(); err != nil {
		t.Fatalf("valid tx rejected: %v", err)
	}
	// Redirecting an output must invalidate the signature.
	tx.Outputs[0].To = crypto.Address(crypto.HashBytes([]byte("thief")))
	tx.Invalidate()
	if err := tx.CheckWellFormed(); err == nil {
		t.Error("tampered output accepted")
	}
}

func TestCheckWellFormedShapes(t *testing.T) {
	key := testKey(t, 4)
	valid := makeSignedTx(t, key, OutPoint{}, 5, 5)

	cases := []struct {
		name string
		tx   *Transaction
	}{
		{"no outputs", &Transaction{Kind: TxRegular, Inputs: valid.Inputs}},
		{"negative value", &Transaction{Kind: TxCoinbase, Outputs: []TxOutput{{Value: -1}}}},
		{"overflow value", &Transaction{Kind: TxCoinbase, Outputs: []TxOutput{{Value: MaxAmount + 1}}}},
		{"coinbase with inputs", &Transaction{Kind: TxCoinbase, Inputs: valid.Inputs, Outputs: valid.Outputs}},
		{"regular without inputs", &Transaction{Kind: TxRegular, Outputs: valid.Outputs}},
		{"poison without evidence", &Transaction{Kind: TxPoison, Outputs: valid.Outputs}},
		{"regular with evidence", &Transaction{Kind: TxRegular, Inputs: valid.Inputs, Outputs: valid.Outputs, Evidence: &PoisonEvidence{}}},
		{"regular with height", func() *Transaction {
			tx := makeSignedTx(t, key, OutPoint{}, 5, 5)
			tx.Height = 7
			return tx
		}()},
		{"unknown kind", &Transaction{Kind: 99, Outputs: valid.Outputs}},
	}
	for _, c := range cases {
		if err := c.tx.CheckWellFormed(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestCoinbaseWellFormed(t *testing.T) {
	cb := &Transaction{
		Kind:    TxCoinbase,
		Outputs: []TxOutput{{Value: 50, To: crypto.Address{1}}},
		Height:  10,
	}
	if err := cb.CheckWellFormed(); err != nil {
		t.Errorf("valid coinbase rejected: %v", err)
	}
}

func TestPoisonEvidenceRoundTrip(t *testing.T) {
	leader := testKey(t, 5)
	hdr := MicroBlockHeader{
		Prev:      crypto.HashBytes([]byte("parent")),
		TxRoot:    crypto.HashBytes([]byte("root")),
		TimeNanos: 12345,
	}
	hdr.Sign(leader)
	tx := &Transaction{
		Kind:    TxPoison,
		Outputs: []TxOutput{{Value: 1, To: crypto.Address{2}}},
		Evidence: &PoisonEvidence{
			Culprit:  crypto.HashBytes([]byte("keyblock")),
			Pruned:   hdr,
			Conflict: crypto.HashBytes([]byte("mainchain micro")),
		},
	}
	if err := tx.CheckWellFormed(); err != nil {
		t.Fatalf("valid poison rejected: %v", err)
	}
	var out Transaction
	if err := wire.Decode(wire.Encode(tx), &out); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if out.Evidence == nil || out.Evidence.Pruned.Signature != hdr.Signature {
		t.Error("evidence lost in round trip")
	}
	if !out.Evidence.Pruned.VerifySignature(leader.Public()) {
		t.Error("decoded evidence signature invalid")
	}
}

func TestOutputSum(t *testing.T) {
	tx := &Transaction{Outputs: []TxOutput{{Value: 3}, {Value: 4}}}
	if got := tx.OutputSum(); got != 7 {
		t.Errorf("OutputSum = %d", got)
	}
}

func TestWireSizeTracksPadding(t *testing.T) {
	key := testKey(t, 6)
	tx := makeSignedTx(t, key, OutPoint{}, 1, 1)
	base := tx.WireSize()
	tx.Padding = make([]byte, 100)
	tx.Invalidate()
	if got := tx.WireSize(); got != base+100 {
		t.Errorf("WireSize with padding = %d, base = %d", got, base)
	}
}

func TestTransactionDecodeRejectsJunkProperty(t *testing.T) {
	// Random byte strings must either fail to decode or decode to a value
	// that re-encodes to the same bytes (decode/encode is an identity on
	// the valid subset).
	f := func(b []byte) bool {
		var tx Transaction
		if err := wire.Decode(b, &tx); err != nil {
			return true
		}
		out := wire.Encode(&tx)
		if len(out) != len(b) {
			return false
		}
		for i := range out {
			if out[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
