package invariant

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"bitcoinng/internal/chain"
	"bitcoinng/internal/crypto"
	"bitcoinng/internal/types"
	"bitcoinng/internal/utxo"
)

// permissive accepts any well-formed block and enforces NO economics: it
// stands in for a buggy validation pipeline, so the injection tests can
// build chains that real rules would reject and prove the invariant engine
// catches them independently.
type permissive struct{}

func (permissive) RulesID() string { return "test/permissive" }

func (permissive) CheckBlock(st *chain.State, parent *chain.Node, b types.Block, now int64) error {
	// Structural decode only — economics and signatures deliberately skipped
	// (microblocks especially: a wrong-leader signature must get through so
	// the single-leader invariant can catch it).
	return nil
}

func (permissive) ConnectCheck(st *chain.State, n *chain.Node, fees []types.Amount) error {
	return nil
}

func (permissive) PoisonTargets(st *chain.State, parent *chain.Node, b types.Block) (map[crypto.Hash]crypto.Hash, error) {
	return nil, nil
}

// fixture builds chains through the permissive rules.
type fixture struct {
	t       *testing.T
	st      *chain.State
	params  types.Params
	key     *crypto.PrivateKey
	genesis *types.PowBlock
	funded  []types.OutPoint
	now     int64
	height  uint64
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	key, err := crypto.GenerateKey(rng)
	if err != nil {
		t.Fatal(err)
	}
	genesis := types.GenesisBlock(types.GenesisSpec{
		Target: crypto.EasiestTarget,
		Payouts: []types.TxOutput{
			{Value: 10_000, To: key.Public().Addr()},
			{Value: 10_000, To: key.Public().Addr()},
		},
	})
	params := types.DefaultParams()
	params.Subsidy = 1000
	st, err := chain.New(genesis, params, permissive{}, &chain.HeaviestChain{Rand: rng})
	if err != nil {
		t.Fatal(err)
	}
	cbID := genesis.Txs[0].ID()
	return &fixture{
		t: t, st: st, params: params, key: key, genesis: genesis,
		funded: []types.OutPoint{{TxID: cbID, Index: 0}, {TxID: cbID, Index: 1}},
	}
}

func (f *fixture) keyBlock(prev crypto.Hash, leader *crypto.PrivateKey, outputs ...types.TxOutput) *types.KeyBlock {
	f.height++
	if outputs == nil {
		outputs = []types.TxOutput{{Value: f.params.Subsidy, To: leader.Public().Addr()}}
	}
	txs := []*types.Transaction{{Kind: types.TxCoinbase, Outputs: outputs, Height: f.height}}
	f.now += int64(time.Second)
	return &types.KeyBlock{
		Header: types.KeyBlockHeader{
			Prev:       prev,
			MerkleRoot: crypto.MerkleRoot(types.TxIDs(txs)),
			TimeNanos:  f.now,
			Target:     crypto.EasiestTarget,
			LeaderKey:  leader.Public(),
		},
		Txs:          txs,
		SimulatedPoW: true,
	}
}

func (f *fixture) microBlock(prev crypto.Hash, signer *crypto.PrivateKey, txs ...*types.Transaction) *types.MicroBlock {
	f.now += int64(10 * time.Millisecond)
	mb := &types.MicroBlock{
		Header: types.MicroBlockHeader{
			Prev:      prev,
			TxRoot:    crypto.MerkleRoot(types.TxIDs(txs)),
			TimeNanos: f.now,
		},
		Txs: txs,
	}
	mb.Header.Sign(signer)
	return mb
}

func (f *fixture) spend(from types.OutPoint, value types.Amount, to crypto.Address) *types.Transaction {
	tx := &types.Transaction{
		Kind:    types.TxRegular,
		Inputs:  []types.TxInput{{Prev: from}},
		Outputs: []types.TxOutput{{Value: value, To: to}},
	}
	tx.SignInput(0, f.key)
	return tx
}

func (f *fixture) add(b types.Block) {
	f.t.Helper()
	res, err := f.st.AddBlock(b, f.now)
	if err != nil {
		f.t.Fatalf("AddBlock(%s): %v", b.Hash().Short(), err)
	}
	if res.Status != chain.StatusMainChain {
		f.t.Fatalf("AddBlock(%s): status %v", b.Hash().Short(), res.Status)
	}
}

// snapshot wraps the fixture's single node.
func (f *fixture) snapshot(final bool) *Snapshot {
	return &Snapshot{
		Now:    f.now,
		Final:  final,
		Params: f.params,
		Nodes:  []NodeState{{ID: 0, Chain: f.st, Strategy: "honest"}},
	}
}

// fired returns the distinct invariant names with violations.
func fired(e *Engine) map[string]bool {
	out := make(map[string]bool)
	for _, v := range e.Violations() {
		out[v.Invariant] = true
	}
	return out
}

// assertOnly checks that exactly `want` fired (and its message mentions
// wantMsg).
func assertOnly(t *testing.T, e *Engine, want, wantMsg string) {
	t.Helper()
	got := fired(e)
	if !got[want] {
		t.Fatalf("invariant %q did not fire; violations: %v", want, e.Violations())
	}
	for name := range got {
		if name != want {
			t.Errorf("unrelated invariant %q fired: %v", name, e.Violations())
		}
	}
	if wantMsg != "" {
		found := false
		for _, v := range e.Violations() {
			if v.Invariant == want && strings.Contains(v.Msg, wantMsg) {
				found = true
			}
		}
		if !found {
			t.Errorf("violation message does not mention %q: %v", wantMsg, e.Violations())
		}
	}
}

// defaultEngine builds the full catalogue with zero grace so consistency
// checks are live immediately.
func defaultEngine() *Engine {
	return NewEngine(Defaults(Options{SettleGrace: time.Nanosecond})...)
}

// TestCleanChainNoViolations: a correctly built NG chain (valid fee split,
// leader-signed microblocks) passes the whole catalogue.
func TestCleanChainNoViolations(t *testing.T) {
	f := newFixture(t)
	leaderA, _ := crypto.GenerateKey(rand.New(rand.NewSource(1)))
	leaderB, _ := crypto.GenerateKey(rand.New(rand.NewSource(2)))

	k1 := f.keyBlock(f.genesis.Hash(), leaderA)
	f.add(k1)
	// Epoch fees: 100 + 60.
	m1 := f.microBlock(k1.Hash(), leaderA, f.spend(f.funded[0], 9_900, crypto.Address{1}))
	f.add(m1)
	m2 := f.microBlock(m1.Hash(), leaderA, f.spend(f.funded[1], 9_940, crypto.Address{2}))
	f.add(m2)
	// Next leader mints subsidy + epoch fees, paying A its 40% (64 of 160).
	leaderShare, nextShare := f.params.SplitFee(160)
	k2 := f.keyBlock(m2.Hash(), leaderB,
		types.TxOutput{Value: f.params.Subsidy + nextShare, To: leaderB.Public().Addr()},
		types.TxOutput{Value: leaderShare, To: leaderA.Public().Addr()})
	f.add(k2)

	e := defaultEngine()
	e.Check(f.snapshot(false))
	e.Check(f.snapshot(true))
	if len(e.Violations()) != 0 {
		t.Fatalf("clean chain produced violations: %v", e.Violations())
	}
}

// TestBadFeeSplitFires: the next leader keeps the whole epoch-fee pot
// (shorting the previous leader's 40%); only fee-split fires. The total
// minted stays within subsidy+fees, so value conservation must NOT fire —
// that is what makes the injection selective.
func TestBadFeeSplitFires(t *testing.T) {
	f := newFixture(t)
	leaderA, _ := crypto.GenerateKey(rand.New(rand.NewSource(1)))
	leaderB, _ := crypto.GenerateKey(rand.New(rand.NewSource(2)))

	k1 := f.keyBlock(f.genesis.Hash(), leaderA)
	f.add(k1)
	m1 := f.microBlock(k1.Hash(), leaderA, f.spend(f.funded[0], 9_800, crypto.Address{1})) // fee 200
	f.add(m1)
	// B mints the full pot to itself: amount legal, split stolen.
	k2 := f.keyBlock(m1.Hash(), leaderB,
		types.TxOutput{Value: f.params.Subsidy + 200, To: leaderB.Public().Addr()})
	f.add(k2)

	e := defaultEngine()
	e.Check(f.snapshot(true))
	assertOnly(t, e, "fee-split", "pays previous leader 0")
}

// TestOverMintFires: a key block minting more than subsidy + epoch fees is
// caught by fee-split's amount bound (the §4.4 remuneration cap).
func TestOverMintFires(t *testing.T) {
	f := newFixture(t)
	leader, _ := crypto.GenerateKey(rand.New(rand.NewSource(1)))
	k1 := f.keyBlock(f.genesis.Hash(), leader,
		types.TxOutput{Value: f.params.Subsidy + 1, To: leader.Public().Addr()})
	f.add(k1)

	e := NewEngine(FeeSplit())
	e.Check(f.snapshot(true))
	assertOnly(t, e, "fee-split", "mints")
}

// TestValueCreationFires: a UTXO delta that conjures value out of thin air —
// simulating a corrupted cache replay — trips value-conservation and only
// it. The injection bypasses the chain layer entirely and mutates the live
// set, exactly like a replay-against-wrong-prestate bug would.
func TestValueCreationFires(t *testing.T) {
	f := newFixture(t)
	leader, _ := crypto.GenerateKey(rand.New(rand.NewSource(1)))
	k1 := f.keyBlock(f.genesis.Hash(), leader)
	f.add(k1)

	// Mint 777 units through a rogue coinbase applied directly to the set:
	// no block explains these outputs.
	rogue := &types.Transaction{
		Kind:    types.TxCoinbase,
		Outputs: []types.TxOutput{{Value: 777, To: crypto.Address{0xBA, 0xD0}}},
		Height:  99,
	}
	if _, _, err := f.st.UTXO().ApplyBlock([]*types.Transaction{rogue},
		utxo.BlockContext{Height: 99, Params: f.params}); err != nil {
		t.Fatal(err)
	}

	e := defaultEngine()
	e.Check(f.snapshot(true))
	assertOnly(t, e, "value-conservation", "chain explains")
}

// TestDoubleLeaderEpochFires: a microblock signed by a key that is not the
// epoch leader's — a second leader serializing inside someone else's epoch —
// trips single-leader and only it.
func TestDoubleLeaderEpochFires(t *testing.T) {
	f := newFixture(t)
	leaderA, _ := crypto.GenerateKey(rand.New(rand.NewSource(1)))
	usurper, _ := crypto.GenerateKey(rand.New(rand.NewSource(2)))

	k1 := f.keyBlock(f.genesis.Hash(), leaderA)
	f.add(k1)
	m1 := f.microBlock(k1.Hash(), leaderA) // legitimate
	f.add(m1)
	m2 := f.microBlock(m1.Hash(), usurper) // signed by the wrong leader
	f.add(m2)

	e := defaultEngine()
	e.Check(f.snapshot(false)) // tip-epoch scan must already see it
	assertOnly(t, e, "single-leader", "not signed by epoch leader")

	// The full-history final scan agrees.
	e2 := defaultEngine()
	e2.Check(f.snapshot(true))
	assertOnly(t, e2, "single-leader", "not signed by epoch leader")
}

// divergentPair builds two states sharing genesis whose chains diverge by
// depth key blocks each side.
func divergentPair(t *testing.T, depth int) (a, b *chain.State, params types.Params, now int64) {
	t.Helper()
	f := newFixture(t)
	g, err := chain.New(f.genesis, f.params, permissive{},
		&chain.HeaviestChain{Rand: rand.New(rand.NewSource(12))})
	if err != nil {
		t.Fatal(err)
	}
	leader, _ := crypto.GenerateKey(rand.New(rand.NewSource(3)))
	prevA, prevB := f.genesis.Hash(), f.genesis.Hash()
	for i := 0; i < depth; i++ {
		ka := f.keyBlock(prevA, leader)
		f.add(ka)
		prevA = ka.Hash()
		kb := f.keyBlock(prevB, leader)
		if _, err := g.AddBlock(kb, f.now); err != nil {
			t.Fatal(err)
		}
		prevB = kb.Hash()
	}
	return f.st, g, f.params, f.now
}

// TestForkBoundFires: two honest nodes on branches diverging beyond k trip
// fork-bound (whole network) and convergence (settled), but NOT
// partition-consistency (no partition is in force).
func TestForkBoundFires(t *testing.T) {
	a, b, params, now := divergentPair(t, 4)
	s := &Snapshot{
		Now: now, Params: params,
		Nodes: []NodeState{
			{ID: 0, Chain: a, Strategy: "honest"},
			{ID: 1, Chain: b, Strategy: "honest"},
		},
	}
	e := NewEngine(ForkBound(3, time.Nanosecond), PartitionConsistency(3, time.Nanosecond))
	e.Check(s)
	assertOnly(t, e, "fork-bound", "more than 3 key blocks")

	// The same divergence inside one partition group trips the scoped check
	// instead.
	s.Partitioned = true
	e2 := NewEngine(ForkBound(3, time.Nanosecond), PartitionConsistency(3, time.Nanosecond),
		Convergence(2, time.Nanosecond))
	e2.Check(s)
	assertOnly(t, e2, "partition-consistency", "partition group 0")
}

// TestConvergenceGating: the convergence invariant stays quiet inside its
// settle grace and fires after it.
func TestConvergenceGating(t *testing.T) {
	a, b, params, now := divergentPair(t, 3)
	s := &Snapshot{
		Now: now, Params: params, LastDisruption: now,
		Nodes: []NodeState{
			{ID: 0, Chain: a, Strategy: "honest"},
			{ID: 1, Chain: b, Strategy: "honest"},
		},
	}
	grace := 10 * time.Second
	e := NewEngine(Convergence(2, grace))
	e.Check(s)
	if len(e.Violations()) != 0 {
		t.Fatalf("convergence fired inside settle grace: %v", e.Violations())
	}
	s.Now += int64(grace)
	e.Check(s)
	if got := fired(e); !got["convergence"] {
		t.Fatalf("convergence did not fire after settling: %v", e.Violations())
	}
}

// TestAttackersExcludedFromConsistency: a node running a withholding
// strategy may diverge arbitrarily without tripping the consistency
// invariants.
func TestAttackersExcludedFromConsistency(t *testing.T) {
	a, b, params, now := divergentPair(t, 5)
	s := &Snapshot{
		Now: now, Params: params,
		Nodes: []NodeState{
			{ID: 0, Chain: a, Strategy: "honest"},
			{ID: 1, Chain: b, Strategy: "selfish"},
		},
	}
	e := NewEngine(ForkBound(2, time.Nanosecond), Convergence(2, time.Nanosecond))
	e.Check(s)
	if len(e.Violations()) != 0 {
		t.Fatalf("attacker divergence tripped consistency: %v", e.Violations())
	}
}

// TestViolationDedup: a persistent breakage is recorded once with a count.
func TestViolationDedup(t *testing.T) {
	f := newFixture(t)
	leader, _ := crypto.GenerateKey(rand.New(rand.NewSource(1)))
	k1 := f.keyBlock(f.genesis.Hash(), leader,
		types.TxOutput{Value: f.params.Subsidy + 5, To: leader.Public().Addr()})
	f.add(k1)

	e := NewEngine(FeeSplit())
	e.Check(f.snapshot(false))
	e.Check(f.snapshot(false))
	e.Check(f.snapshot(true))
	if len(e.Violations()) != 1 {
		t.Fatalf("want 1 deduplicated violation, got %v", e.Violations())
	}
	if c := e.Violations()[0].Count; c != 3 {
		t.Fatalf("violation count = %d, want 3", c)
	}
}
