package invariant

import (
	"fmt"
	"time"

	"bitcoinng/internal/chain"
	"bitcoinng/internal/crypto"
	"bitcoinng/internal/types"
	"bitcoinng/internal/utxo"
)

// The built-in catalogue. Each invariant documents the paper claim it pins;
// DESIGN.md §8 carries the full catalogue with context.

// ValueConservation checks that every node's UTXO set holds exactly the
// value its main chain explains: the genesis payouts, plus everything minted
// by coinbase and poison-reward transactions, minus every transaction fee
// destroyed on the way (fees leave the set when a transaction pays them and
// re-enter only through later coinbases — §4.4's remuneration scheme cannot
// create or lose value). A cache-replay or reorg-undo bug that duplicates or
// drops entries breaks this immediately. The property is inherently global
// (a lone extra entry anywhere breaks the sum), so unlike FeeSplit and
// SingleLeader it cannot be scoped to a tip window: every tick pays one
// linear UTXO scan plus one main-chain walk.
func ValueConservation() Invariant { return valueConservation{} }

type valueConservation struct{}

func (valueConservation) Name() string { return "value-conservation" }

func (valueConservation) Check(s *Snapshot, report func(int, string)) {
	for i := range s.Nodes {
		n := &s.Nodes[i]
		if n.Down {
			continue
		}
		st := n.Chain
		var minted, destroyed types.Amount
		for _, blk := range st.MainChain() {
			for _, tx := range blk.Block().Transactions() {
				if tx.Kind == types.TxCoinbase || tx.Kind == types.TxPoison {
					minted += tx.OutputSum()
				}
			}
			destroyed += st.FeeTotal(blk.Hash())
		}
		var held types.Amount
		st.UTXO().Range(func(_ types.OutPoint, e utxo.Entry) bool {
			held += e.Value
			return true
		})
		if want := minted - destroyed; held != want {
			report(n.ID, fmt.Sprintf(
				"UTXO holds %d, chain explains %d (minted %d - fees %d)",
				held, want, minted, destroyed))
		}
	}
}

// FeeSplit re-derives the remuneration rules on main-chain blocks: a key
// block's coinbase mints at most the subsidy plus the previous epoch's
// microblock fees and pays the previous leader at least the LeaderFeeFrac
// share (the paper's 40%, §4.4, whose 37%..43% incentive window §5.1
// derives); a Bitcoin block's coinbase mints at most subsidy plus its own
// fees. The check recomputes epoch fees from the per-block fee records
// instead of trusting ConnectCheck's verdict. Intermediate ticks check the
// newest two PoW/key epochs only — violations surface near their cause
// without re-walking the whole history every tick; the final check covers
// the full chain.
func FeeSplit() Invariant { return feeSplit{} }

type feeSplit struct{}

func (feeSplit) Name() string { return "fee-split" }

func (feeSplit) Check(s *Snapshot, report func(int, string)) {
	for i := range s.Nodes {
		n := &s.Nodes[i]
		if n.Down {
			continue
		}
		st := n.Chain
		if s.Final {
			mc := st.MainChain()
			for _, blk := range mc[1:] { // genesis mints the experiment float
				checkBlockEconomics(st, blk, s.Params, n.ID, report)
			}
			continue
		}
		seenKeys := 0
		for blk := st.Tip(); blk != nil && blk.Parent != nil && seenKeys < 2; blk = blk.Parent {
			if blk.Block().Kind() != types.KindMicro {
				seenKeys++
			}
			checkBlockEconomics(st, blk, s.Params, n.ID, report)
		}
	}
}

// checkBlockEconomics dispatches one block's remuneration check by kind.
func checkBlockEconomics(st *chain.State, blk *chain.Node, params types.Params, node int, report func(int, string)) {
	switch blk.Block().Kind() {
	case types.KindKey:
		checkKeyBlockEconomics(st, blk, params, node, report)
	case types.KindPow:
		cb, ok := coinbaseOf(blk)
		if !ok {
			report(node, fmt.Sprintf("block %s has no coinbase", blk.Hash().Short()))
			return
		}
		if max := params.Subsidy + st.FeeTotal(blk.Hash()); cb.OutputSum() > max {
			report(node, fmt.Sprintf("block %s coinbase mints %d > subsidy+fees %d",
				blk.Hash().Short(), cb.OutputSum(), max))
		}
	}
}

func checkKeyBlockEconomics(st *chain.State, blk *chain.Node, params types.Params, node int, report func(int, string)) {
	cb, ok := coinbaseOf(blk)
	if !ok {
		report(node, fmt.Sprintf("key block %s has no coinbase", blk.Hash().Short()))
		return
	}
	epochFees := st.EpochFeesAt(blk.Parent)
	if max := params.Subsidy + epochFees; cb.OutputSum() > max {
		report(node, fmt.Sprintf("key block %s coinbase mints %d > subsidy+epoch fees %d",
			blk.Hash().Short(), cb.OutputSum(), max))
	}
	leaderShare, _ := params.SplitFee(epochFees)
	if leaderShare == 0 {
		return
	}
	prev, ok := coinbaseOf(blk.Parent.KeyAncestor)
	if !ok || len(prev.Outputs) == 0 {
		return // no previous leader to owe (first epoch off genesis)
	}
	prevLeader := prev.Outputs[0].To
	var paid types.Amount
	for i := range cb.Outputs {
		if cb.Outputs[i].To == prevLeader {
			paid += cb.Outputs[i].Value
		}
	}
	if paid < leaderShare {
		report(node, fmt.Sprintf("key block %s pays previous leader %d of %d epoch-fee share (40%% of %d)",
			blk.Hash().Short(), paid, leaderShare, epochFees))
	}
}

// coinbaseOf returns a block's coinbase transaction (by convention the
// first), if it has one.
func coinbaseOf(blk *chain.Node) (*types.Transaction, bool) {
	txs := blk.Block().Transactions()
	if len(txs) == 0 || txs[0].Kind != types.TxCoinbase {
		return nil, false
	}
	return txs[0], true
}

// SingleLeader checks that every microblock an honest node serialized was
// signed by the leader key of its epoch's key block — §4.2's "a key block
// contains a public key that signs subsequent microblocks"; together with
// the fork choice this is exactly "at most one leader's serialization wins
// per epoch". Signatures are re-verified from scratch; at intermediate
// ticks only the tip epoch is checked (signatures are slow), the final
// check covers the whole chain.
func SingleLeader() Invariant { return singleLeader{} }

type singleLeader struct{}

func (singleLeader) Name() string { return "single-leader" }

func (singleLeader) Check(s *Snapshot, report func(int, string)) {
	for i := range s.Nodes {
		n := &s.Nodes[i]
		if !n.Honest() || n.Down {
			continue
		}
		if s.Final {
			for _, blk := range n.Chain.MainChain() {
				checkEpochSignature(blk, n.ID, report)
			}
			continue
		}
		// Tip epoch only: walk down from the tip until the epoch's key block.
		for blk := n.Chain.Tip(); blk != nil && blk.Block().Kind() == types.KindMicro; blk = blk.Parent {
			checkEpochSignature(blk, n.ID, report)
		}
	}
}

func checkEpochSignature(blk *chain.Node, node int, report func(int, string)) {
	mb, ok := blk.Block().(*types.MicroBlock)
	if !ok {
		return
	}
	key, ok := blk.KeyAncestor.Block().(*types.KeyBlock)
	if !ok {
		report(node, fmt.Sprintf("microblock %s has no key-block epoch", blk.Hash().Short()))
		return
	}
	if !mb.Header.VerifySignature(key.Header.LeaderKey) {
		report(node, fmt.Sprintf("microblock %s not signed by epoch leader (key block %s)",
			blk.Hash().Short(), blk.KeyAncestor.Hash().Short()))
	}
}

// keyDivergence reports whether the main chains of a and b share a common
// ancestor within k key blocks of the lower tip. The walk is hash-based (the
// two states own disjoint node trees) and bounded to the k+1 most recent key
// heights of each chain.
func keyDivergence(a, b *chain.State, k int) bool {
	m := a.Tip().KeyHeight
	if h := b.Tip().KeyHeight; h < m {
		m = h
	}
	if m <= uint64(k) {
		return true // cannot diverge deeper than the chain itself
	}
	floor := m - uint64(k)
	onA := make(map[crypto.Hash]bool)
	for blk := a.Tip(); blk != nil && blk.KeyHeight >= floor; blk = blk.Parent {
		onA[blk.Hash()] = true
	}
	for blk := b.Tip(); blk != nil && blk.KeyHeight >= floor; blk = blk.Parent {
		if onA[blk.Hash()] {
			return true
		}
	}
	return false
}

// graceOr resolves a configured settle grace, defaulting to mult key-block
// intervals.
func graceOr(configured time.Duration, params types.Params, mult int) time.Duration {
	if configured > 0 {
		return configured
	}
	return time.Duration(mult) * params.TargetBlockInterval
}

// checkPairwise reports every pair of listed honest nodes whose key chains
// diverge beyond k.
func checkPairwise(nodes []*NodeState, k int, label string, report func(int, string)) {
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			if !keyDivergence(nodes[i].Chain, nodes[j].Chain, k) {
				report(nodes[j].ID, fmt.Sprintf(
					"%s: main chain diverges from node %d by more than %d key blocks",
					label, nodes[i].ID, k))
			}
		}
	}
}

// honestIn collects the honest, running nodes of the snapshot, optionally
// restricted to one partition group (group < 0 means all). Down nodes are
// never listed: their frozen pre-crash chains legitimately lag.
func honestIn(s *Snapshot, group int) []*NodeState {
	var out []*NodeState
	for i := range s.Nodes {
		n := &s.Nodes[i]
		if !n.Honest() || n.Down {
			continue
		}
		if group >= 0 && n.Group != group {
			continue
		}
		out = append(out, n)
	}
	return out
}

// ForkBound is no-honest-fork-beyond-k: while the network is whole (and has
// settled after its last disruption), any two honest nodes' main chains
// share a common ancestor within k key blocks of the lower tip. The paper's
// consistency argument (§3, §4.1) allows short races — simultaneous key
// blocks, selfish releases — but never sustained divergence between
// connected honest miners.
func ForkBound(k int, grace time.Duration) Invariant {
	return forkBound{k: k, grace: grace}
}

type forkBound struct {
	k     int
	grace time.Duration
}

func (f forkBound) Name() string { return "fork-bound" }

func (f forkBound) Check(s *Snapshot, report func(int, string)) {
	if s.Partitioned || !s.settledFor(graceOr(f.grace, s.Params, 2)) {
		return
	}
	checkPairwise(honestIn(s, -1), f.k, "connected network", report)
}

// PartitionConsistency is the fork bound scoped to partition groups: while a
// partition is in force, honest nodes that can still reach each other must
// keep agreeing, even though the groups diverge arbitrarily far from one
// another (§4.1's consensus holds within every connected component).
func PartitionConsistency(k int, grace time.Duration) Invariant {
	return partitionConsistency{k: k, grace: grace}
}

type partitionConsistency struct {
	k     int
	grace time.Duration
}

func (p partitionConsistency) Name() string { return "partition-consistency" }

func (p partitionConsistency) Check(s *Snapshot, report func(int, string)) {
	if !s.Partitioned || !s.settledFor(graceOr(p.grace, s.Params, 2)) {
		return
	}
	groups := make(map[int][]*NodeState)
	var order []int
	for i := range s.Nodes {
		n := &s.Nodes[i]
		if !n.Honest() || n.Down {
			continue
		}
		if _, ok := groups[n.Group]; !ok {
			order = append(order, n.Group)
		}
		groups[n.Group] = append(groups[n.Group], n)
	}
	for _, g := range order {
		checkPairwise(groups[g], p.k, fmt.Sprintf("partition group %d", g), report)
	}
}

// Convergence is the post-heal liveness-of-agreement claim: once the network
// has been whole and undisturbed for the (longer) convergence grace, the
// partition-era branches must have collapsed — every pair of honest nodes
// agrees up to a small tail of depth key blocks. This is the §4.1/§7.1
// "network converges on a single chain after partitions heal" property that
// motivates the coinbase maturity period (§4.4).
func Convergence(depth int, grace time.Duration) Invariant {
	return convergence{depth: depth, grace: grace}
}

type convergence struct {
	depth int
	grace time.Duration
}

func (c convergence) Name() string { return "convergence" }

func (c convergence) Check(s *Snapshot, report func(int, string)) {
	if s.Partitioned || !s.settledFor(graceOr(c.grace, s.Params, 4)) {
		return
	}
	checkPairwise(honestIn(s, -1), c.depth, "settled network", report)
}

// DurablePrefix pins the crash/recovery contract between a node's chain tree
// and its durable block archive, in both directions: every durably stored
// block is present in the tree (a restarted node's chain extends exactly
// what it had persisted — replay lost nothing), and every main-chain block
// except genesis is durably stored (processBlock persists before it
// announces, so an accepted block can never be lost to a crash). Checked at
// intermediate ticks only on nodes that have restarted (where replay bugs
// would surface); the final check covers every persisted node.
func DurablePrefix() Invariant { return durablePrefix{} }

type durablePrefix struct{}

func (durablePrefix) Name() string { return "durable-prefix" }

func (durablePrefix) Check(s *Snapshot, report func(int, string)) {
	for i := range s.Nodes {
		n := &s.Nodes[i]
		if n.Down || n.Durable == nil {
			continue
		}
		if !s.Final && n.LastRestart == 0 {
			continue
		}
		missing, first := 0, crypto.Hash{}
		for _, h := range n.Durable.Hashes() {
			if !n.Chain.HasBlock(h) {
				if missing == 0 {
					first = h
				}
				missing++
			}
		}
		if missing > 0 {
			report(n.ID, fmt.Sprintf(
				"%d durably stored blocks absent from chain tree (first %s)",
				missing, first.Short()))
		}
		for _, blk := range n.Chain.MainChain()[1:] { // genesis is preloaded, never persisted
			if !n.Durable.Contains(blk.Hash()) {
				report(n.ID, fmt.Sprintf(
					"main-chain block %s at height %d not durably stored",
					blk.Hash().Short(), blk.Height))
				break
			}
		}
	}
}

// ResyncConvergence is the recovery counterpart of ForkBound: once a
// restarted node has had the catch-up grace to replay its durable prefix and
// pull the missed suffix through the sync protocol, its main chain must be
// back within the fork bound of every other honest running node. A sync
// protocol that stalls, loops, or serves the wrong branch parks the
// restarted node on a stale chain and trips this within one grace period.
func ResyncConvergence(k int, grace time.Duration) Invariant {
	return resyncConvergence{k: k, grace: grace}
}

type resyncConvergence struct {
	k     int
	grace time.Duration
}

func (r resyncConvergence) Name() string { return "resync-convergence" }

func (r resyncConvergence) Check(s *Snapshot, report func(int, string)) {
	if s.Partitioned {
		return
	}
	grace := graceOr(r.grace, s.Params, 4)
	if !s.settledFor(grace) {
		return
	}
	honest := honestIn(s, -1)
	for _, n := range honest {
		if n.LastRestart == 0 || s.Now-n.LastRestart < int64(grace) {
			continue
		}
		for _, m := range honest {
			if m.ID == n.ID {
				continue
			}
			if !keyDivergence(n.Chain, m.Chain, r.k) {
				report(n.ID, fmt.Sprintf(
					"restarted node still diverges from node %d by more than %d key blocks after catch-up grace",
					m.ID, r.k))
			}
		}
	}
}
