// Package invariant is the online safety-property checker of the chaos
// subsystem: a catalogue of Bitcoin-NG's paper-claimed invariants (value
// conservation, the 40/60 fee split, single leadership per epoch, bounded
// honest forks, post-partition convergence) evaluated against every node's
// live chain state at configurable sim-time ticks and once more at run end.
//
// The checkers deliberately re-derive every property from first principles —
// walking main chains, summing UTXO entries, re-verifying microblock
// signatures — instead of trusting the validation pipeline's verdicts: the
// point is to catch the pipeline (cache replay, sharded delivery, reorg
// bookkeeping) lying, so sharing its code would be circular. A state
// assembled by a buggy or deliberately permissive rule set fails here even
// though it passed validation; the violation-injection tests rely on exactly
// that.
//
// Both harnesses (the experiment runner and the interactive cluster) build a
// Snapshot at quiescent points and feed it to an Engine; violations carry the
// virtual time and node of first observation, so reports stay byte-identical
// across the sequential and sharded execution engines.
package invariant

import (
	"fmt"
	"time"

	"bitcoinng/internal/chain"
	"bitcoinng/internal/crypto"
	"bitcoinng/internal/types"
)

// DurableStore is the read side of a node's durable block archive, as the
// crash/recovery invariants see it. Both blockstore.Store (file-backed) and
// blockstore.Mem (the simulation's crash-surviving archive) satisfy it.
type DurableStore interface {
	// Hashes returns the stored block hashes in append order.
	Hashes() []crypto.Hash
	// Contains reports whether the block is stored.
	Contains(h crypto.Hash) bool
}

// NodeState is one node's view at snapshot time.
type NodeState struct {
	// ID is the node's index in the network.
	ID int
	// Chain is the node's live chain state (read-only use; snapshots are
	// taken at quiescent points where no event is mutating it). For a down
	// node this is the pre-crash client's frozen state; invariants skip it.
	Chain *chain.State
	// Strategy is the node's active mining strategy name; consistency
	// invariants only bind nodes running "honest" (an attacker's withheld
	// private chain is supposed to diverge).
	Strategy string
	// Group is the node's partition group (0 when the network is whole).
	Group int
	// Down reports the node is crashed: detached from the network with its
	// in-memory state torn down. Every invariant skips down nodes — their
	// frozen pre-crash state is legitimately stale.
	Down bool
	// LastRestart is the virtual time the node last completed a Restart (0
	// if it never crashed); resync-convergence holds its fire for a grace
	// period after it.
	LastRestart int64
	// Durable is the node's durable block archive, nil when the harness
	// runs without persistence.
	Durable DurableStore
}

// Honest reports whether the node mines honestly.
func (n *NodeState) Honest() bool { return n.Strategy == "" || n.Strategy == "honest" }

// Snapshot is everything the invariant catalogue sees at one check point.
type Snapshot struct {
	// Now is the virtual time of the check (Unix nanoseconds on the sim
	// clock).
	Now int64
	// Final marks the end-of-run check, after mining stopped and the grace
	// period let in-flight blocks settle; expensive full-history checks run
	// only here.
	Final bool
	// Params are the consensus parameters of the run.
	Params types.Params
	// Nodes holds every node, in index order.
	Nodes []NodeState
	// Partitioned reports whether a partition is currently in force; Group
	// fields are only meaningful when it is.
	Partitioned bool
	// LastDisruption is the virtual time of the most recent event that can
	// legitimately desynchronize nodes — a partition, a heal, a latency
	// rescale, a strategy switch. Consistency invariants hold their fire
	// until the network has had time to settle after it.
	LastDisruption int64
}

// settledFor reports whether at least d has elapsed since the last
// disruption.
func (s *Snapshot) settledFor(d time.Duration) bool {
	return s.Now-s.LastDisruption >= int64(d)
}

// Violation is one observed invariant failure.
type Violation struct {
	// Invariant is the failing invariant's name.
	Invariant string
	// Node is the node the violation was observed on (-1 for properties of
	// the network as a whole).
	Node int
	// At is the virtual time of first observation.
	At int64
	// Msg describes the failure with the observed and expected values.
	Msg string
	// Count is how many checks observed this (invariant, node) pair in
	// violation; the Msg is from the first.
	Count int
}

// String formats the violation for reports.
func (v Violation) String() string {
	where := "network"
	if v.Node >= 0 {
		where = fmt.Sprintf("node %d", v.Node)
	}
	return fmt.Sprintf("[%s] %s at %v: %s (seen %dx)",
		v.Invariant, where, time.Duration(v.At), v.Msg, v.Count)
}

// Invariant is one checkable safety property. Check examines the snapshot
// and reports every violation through report; implementations must be
// deterministic functions of the snapshot (no clocks, no map-order
// dependence in what they report).
type Invariant interface {
	// Name identifies the invariant in violations and documentation.
	Name() string
	// Check evaluates the property. node is -1 for network-level findings.
	Check(s *Snapshot, report func(node int, msg string))
}

// Engine evaluates a fixed catalogue of invariants over successive
// snapshots, deduplicating violations by (invariant, node) so a persistent
// breakage yields one violation with a count instead of one per tick.
type Engine struct {
	invs  []Invariant
	index map[[2]int]int // (invariant idx, node+1) -> violation idx
	viols []Violation
}

// NewEngine creates an engine over the given catalogue.
func NewEngine(invs ...Invariant) *Engine {
	return &Engine{invs: invs, index: make(map[[2]int]int)}
}

// Check runs every invariant against the snapshot, recording violations.
func (e *Engine) Check(s *Snapshot) {
	for i, inv := range e.invs {
		i := i
		inv.Check(s, func(node int, msg string) {
			key := [2]int{i, node + 1}
			if at, ok := e.index[key]; ok {
				e.viols[at].Count++
				return
			}
			e.index[key] = len(e.viols)
			e.viols = append(e.viols, Violation{
				Invariant: inv.Name(),
				Node:      node,
				At:        s.Now,
				Msg:       msg,
				Count:     1,
			})
		})
	}
}

// Violations returns every recorded violation in first-observation order.
// The slice is the engine's own; callers must not mutate it.
func (e *Engine) Violations() []Violation { return e.viols }

// Options tunes the default catalogue.
type Options struct {
	// ForkBound is the k of no-honest-fork-beyond-k: the maximum key-block
	// depth honest main chains may diverge while connected. Zero takes 6.
	ForkBound int
	// ConvergenceDepth is the (much tighter) divergence allowed once the
	// network has settled after its last disruption. Zero takes 2.
	ConvergenceDepth int
	// SettleGrace is how long after a disruption the consistency invariants
	// stay quiet, letting gossip re-synchronize the (re)connected groups.
	// Zero takes 2 key-block intervals at check time.
	SettleGrace time.Duration
}

// Defaults returns the full built-in catalogue.
func Defaults(opts Options) []Invariant {
	if opts.ForkBound <= 0 {
		opts.ForkBound = 6
	}
	if opts.ConvergenceDepth <= 0 {
		opts.ConvergenceDepth = 2
	}
	return []Invariant{
		ValueConservation(),
		FeeSplit(),
		SingleLeader(),
		ForkBound(opts.ForkBound, opts.SettleGrace),
		PartitionConsistency(opts.ForkBound, opts.SettleGrace),
		Convergence(opts.ConvergenceDepth, 2*opts.SettleGrace),
		DurablePrefix(),
		ResyncConvergence(opts.ForkBound, 2*opts.SettleGrace),
	}
}
