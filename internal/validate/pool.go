package validate

import (
	"runtime"
	"sync"
	"sync/atomic"

	"bitcoinng/internal/types"
)

// Pool runs stage-1 (stateless) verification work in parallel with a barrier:
// Run returns only when every item has been processed, so callers sitting at
// an event-loop boundary (an experiment about to start, a live node about to
// enqueue a decoded block) observe exactly the same state as if the work had
// run serially — the items are pure functions whose verdicts land in the
// objects' own caches, and the barrier keeps any parallelism invisible to
// the deterministic single-threaded loops.
//
// Workers never share an item, so the non-atomic verdict caches on types
// objects (Transaction, PowBlock, ...) stay race-free: each object is touched
// by one worker, and the barrier's WaitGroup edge publishes the writes to the
// caller.
type Pool struct {
	workers int
}

// NewPool creates a pool with the given parallelism; workers <= 0 takes
// GOMAXPROCS. A single-worker pool runs inline with no goroutines.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

var sharedPool = NewPool(0)

// SharedPool returns the process-wide pool sized to the machine.
func SharedPool() *Pool { return sharedPool }

// minParallelItems is the batch size below which goroutine fan-out costs more
// than it saves.
const minParallelItems = 16

// Run invokes fn(i) for every i in [0, n) and waits for all of them (the
// barrier). fn must not touch shared mutable state; distinct items may run
// concurrently in any order.
func (p *Pool) Run(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if p.workers == 1 || n < minParallelItems {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	workers := p.workers
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// WarmTransactions pre-computes every transaction's stateless verdict and
// derived values (ID, wire size, input addresses) so the event loop only ever
// sees cache hits. Verification errors are left in the objects' caches for
// the consensus path to surface in context.
func (p *Pool) WarmTransactions(txs []*types.Transaction) {
	p.Run(len(txs), func(i int) {
		tx := txs[i]
		tx.CheckWellFormed()
		tx.ID()
		tx.WireSize()
		for j := range tx.Inputs {
			tx.InputAddr(j)
		}
	})
}

// WarmBlock pre-computes a block's stateless work: hash, wire size, the
// header-level well-formedness verdict where it needs no context (PoW and key
// blocks), and every carried transaction's verdict. Microblock signature
// checks need the epoch's leader key and stay with the contextual stage. The
// caller must own the block exclusively until the call returns (the live p2p
// path warms a freshly decoded block before posting it to the event loop).
func (p *Pool) WarmBlock(b types.Block) {
	b.Hash()
	b.WireSize()
	// Warm the transactions first so the block-level verdict below reduces
	// to Merkle hashing over already-verified objects.
	p.WarmTransactions(b.Transactions())
	switch blk := b.(type) {
	case *types.PowBlock:
		blk.CheckWellFormed()
	case *types.KeyBlock:
		blk.CheckWellFormed()
	}
}
