package validate

import (
	"errors"
	"sync/atomic"
	"testing"

	"bitcoinng/internal/crypto"
	"bitcoinng/internal/types"
)

func key(b byte) Key {
	return Key{Block: crypto.HashBytes([]byte{b}), Rules: Fingerprint(crypto.HashBytes([]byte("r")))}
}

func TestCacheStoreLookup(t *testing.T) {
	c := NewCache(8)
	if _, ok := c.Lookup(key(1)); ok {
		t.Fatal("lookup hit on empty cache")
	}
	want := &ConnectResult{FeeTotal: 42}
	c.Store(key(1), want)
	got, ok := c.Lookup(key(1))
	if !ok || got != want {
		t.Fatalf("lookup = %v, %v; want stored result", got, ok)
	}
	// Same block under different rules is a distinct universe.
	other := Key{Block: key(1).Block, Rules: Fingerprint(crypto.HashBytes([]byte("other")))}
	if _, ok := c.Lookup(other); ok {
		t.Fatal("different fingerprint shared a cache entry")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.HitRate() <= 0.33 || st.HitRate() >= 0.34 {
		t.Fatalf("hit rate = %f", st.HitRate())
	}
}

func TestCacheDuplicateStoreKeepsFirst(t *testing.T) {
	c := NewCache(8)
	first := &ConnectResult{FeeTotal: 1}
	c.Store(key(1), first)
	c.Store(key(1), &ConnectResult{FeeTotal: 2})
	got, _ := c.Lookup(key(1))
	if got != first {
		t.Fatal("duplicate store replaced the first result")
	}
}

// segKey builds a key that lands in segment seg with a distinguishing tag.
func segKey(t *testing.T, seg byte, tag byte) Key {
	t.Helper()
	for b := 0; b < 1<<16; b++ {
		k := Key{
			Block: crypto.HashBytes([]byte{byte(b), byte(b >> 8), tag}),
			Rules: Fingerprint(crypto.HashBytes([]byte{tag})),
		}
		if k.Block[0]&(cacheSegments-1) == seg {
			return k
		}
	}
	t.Fatal("could not land a key in the segment")
	return Key{}
}

func TestCacheFIFOEviction(t *testing.T) {
	// The bound is enforced per segment (max/cacheSegments each, rounded
	// up), so the whole cache never exceeds max+cacheSegments-1 entries.
	c := NewCache(cacheSegments) // one entry per segment
	var keys []Key
	for i := byte(0); i < 4; i++ {
		k := segKey(t, 3, i) // all in one segment
		keys = append(keys, k)
		c.Store(k, &ConnectResult{FeeTotal: types.Amount(i)})
	}
	if st := c.Stats(); st.Entries > 1 {
		t.Fatalf("segment grew past its bound: %d entries", st.Entries)
	}
	// The newest entry survives; the older ones were evicted FIFO.
	if _, ok := c.Lookup(keys[3]); !ok {
		t.Fatal("newest entry evicted")
	}
	if _, ok := c.Lookup(keys[0]); ok {
		t.Fatal("oldest entry survived past the bound")
	}

	// Across segments the global bound holds up to segment-grid rounding.
	big := NewCache(4)
	for b := byte(0); b < 200; b++ {
		big.Store(key(b), &ConnectResult{FeeTotal: types.Amount(b)})
	}
	if st := big.Stats(); st.Entries > 4+cacheSegments-1 {
		t.Fatalf("cache grew past its rounded bound: %d entries", st.Entries)
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	params := types.DefaultParams()
	base := FingerprintOf("proto", params)
	if base != FingerprintOf("proto", params) {
		t.Fatal("fingerprint not deterministic")
	}
	if base == FingerprintOf("other", params) {
		t.Fatal("different rules id, same fingerprint")
	}
	tweaked := params
	tweaked.Subsidy++
	if base == FingerprintOf("proto", tweaked) {
		t.Fatal("different params, same fingerprint")
	}
}

func TestPoolRunCoversAllItemsOnce(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := NewPool(workers)
		const n = 100
		var counts [n]atomic.Int32
		p.Run(n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: item %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestPoolWarmTransactionsCachesVerdicts(t *testing.T) {
	// A coinbase-style transaction is valid and cacheable without context.
	txs := make([]*types.Transaction, 32)
	for i := range txs {
		txs[i] = &types.Transaction{
			Kind:    types.TxCoinbase,
			Outputs: []types.TxOutput{{Value: 1, To: crypto.Address{byte(i)}}},
			Height:  uint64(i),
		}
	}
	NewPool(4).WarmTransactions(txs)
	for i, tx := range txs {
		if err := tx.CheckWellFormed(); err != nil {
			t.Fatalf("tx %d: %v", i, err)
		}
		if tx.WireSize() == 0 {
			t.Fatalf("tx %d: size not primed", i)
		}
	}
	// Invalid transactions keep failing after a warm pass.
	bad := &types.Transaction{Kind: types.TxRegular}
	NewPool(2).WarmTransactions([]*types.Transaction{bad})
	if err := bad.CheckWellFormed(); !errors.Is(err, types.ErrNoOutputs) {
		t.Fatalf("bad tx verdict = %v", err)
	}
}
