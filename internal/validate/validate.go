// Package validate is the shared validation pipeline behind every protocol
// node. Validation of a block splits into three stages:
//
//  1. Stateless well-formedness — proof of work against the header, Merkle
//     roots, transaction shapes, signatures. These are pure functions of the
//     object itself and are verdict-cached on the objects in internal/types;
//     this package adds a deterministic worker pool (Pool) that pre-warms
//     those caches in parallel outside the single-threaded event loops.
//
//  2. Contextual connect — applying the block's transactions to the UTXO set
//     at its parent and checking the protocol's economic rules (coinbase
//     amounts, fee splits, poison evidence). The outcome — the UTXO delta,
//     the per-transaction fees, and the verdict — is a pure function of
//     (block hash, parent hash, rules fingerprint): the block hash commits to
//     the transactions and, through the parent chain, to the exact UTXO state
//     the block connects onto. This package memoizes that outcome in a
//     process-wide content-addressed Cache so that when N simulated nodes
//     connect the same block, the 2nd..Nth replay the recorded delta instead
//     of recomputing it (§8.2 of the paper: once propagation is cheap,
//     per-node processing capacity is the throughput cap).
//
//  3. Per-node state — tip choice, orphan stashes, mempools. Never shared and
//     never cached here.
//
// Sharing a cache entry is sound only between nodes whose validation
// semantics agree, which is what the rules fingerprint pins: it hashes the
// protocol's RulesID (name plus semantics-bearing flags) together with the
// consensus parameters, so nodes running different rules — different
// subsidies, fee splits, intervals, or protocols — can never observe each
// other's verdicts.
package validate

import (
	"fmt"
	"sync"
	"sync/atomic"

	"bitcoinng/internal/crypto"
	"bitcoinng/internal/types"
	"bitcoinng/internal/utxo"
)

// Fingerprint pins a validation-rules universe: protocol semantics plus
// consensus parameters. Connect verdicts are only shared within one
// fingerprint.
type Fingerprint crypto.Hash

// FingerprintOf derives the rules fingerprint from a protocol's RulesID and
// the consensus parameters. Params is hashed through its full value so any
// parameter change — even one a protocol happens to ignore — lands in a
// fresh cache universe; false sharing is a soundness bug, false splitting
// only costs a recompute.
func FingerprintOf(rulesID string, params types.Params) Fingerprint {
	return Fingerprint(crypto.HashBytes([]byte(fmt.Sprintf("%s|%#v", rulesID, params))))
}

// Key content-addresses one connect computation.
type Key struct {
	// Block is the hash of the block being connected; it commits to the
	// transaction set and, through the header chain, to the entire history
	// below it (including genesis), so it uniquely determines the UTXO
	// state the block applies to.
	Block crypto.Hash
	// Parent is the hash of the block connected onto, kept in the key as a
	// defense-in-depth redundancy (Block already commits to it).
	Parent crypto.Hash
	// Rules is the validation-rules fingerprint.
	Rules Fingerprint
}

// ConnectResult is the memoized outcome of the connect stage. Results are
// immutable once stored: replaying nodes read the delta, they never write
// through it.
type ConnectResult struct {
	// Delta is the UTXO mutation the block causes; nil when Err is set.
	Delta *utxo.Delta
	// FeeTotal is the total fee the block collected, recorded by the chain
	// layer for epoch fee accounting. (Per-transaction fees are consumed by
	// the economic checks during the initial computation and not retained.)
	FeeTotal types.Amount
	// Err is the validation verdict: nil for a connectable block, the
	// (deterministic) rejection otherwise. Negative verdicts are cached
	// too — the 2nd..Nth node rejecting an invalid block should not redo
	// the work of discovering why.
	Err error
}

// DefaultCacheSize bounds the shared cache; at ~a few kilobytes per cached
// block delta this caps worst-case memory in the tens of megabytes while
// comfortably holding every block of a paper-scale run.
const DefaultCacheSize = 16384

// cacheSegments splits the cache by key so concurrent users — the shards of
// a parallel run, and concurrent sweep points — lock disjoint segments
// instead of serializing on one mutex. Block hashes are uniform, so the
// first hash byte spreads load evenly. Power of two, for a mask.
const cacheSegments = 16

// Cache is a bounded content-addressed connect cache, safe for concurrent
// use and segmented to stay contention-free under parallel runs. Eviction
// is FIFO per segment: experiment traffic connects a block on every node
// within one propagation delay of the first, so recency hardly matters and
// FIFO keeps eviction O(1) and allocation-free.
type Cache struct {
	segs   [cacheSegments]cacheSegment
	hits   atomic.Uint64
	misses atomic.Uint64
}

type cacheSegment struct {
	mu      sync.RWMutex
	max     int
	entries map[Key]*ConnectResult
	order   []Key // insertion ring, oldest at head
	head    int   // index of the oldest live key in order
}

// NewCache creates a cache bounded to max entries; max <= 0 takes
// DefaultCacheSize. The bound is enforced per segment (max/cacheSegments
// each, rounded up), so the cache holds at most max+cacheSegments-1 entries
// — a memory bound, not an exact count.
func NewCache(max int) *Cache {
	if max <= 0 {
		max = DefaultCacheSize
	}
	c := &Cache{}
	perSeg := (max + cacheSegments - 1) / cacheSegments
	if perSeg < 1 {
		perSeg = 1
	}
	for i := range c.segs {
		c.segs[i].max = perSeg
		c.segs[i].entries = make(map[Key]*ConnectResult, 8)
	}
	return c
}

// segment picks the shard for a key by its block hash's first byte.
func (c *Cache) segment(key Key) *cacheSegment {
	return &c.segs[key.Block[0]&(cacheSegments-1)]
}

var shared = NewCache(0)

// Shared returns the process-wide cache every harness threads through its
// nodes by default. Content addressing makes cross-run sharing sound: equal
// keys imply equal history and equal rules.
func Shared() *Cache { return shared }

// Lookup returns the memoized result for key, if present.
func (c *Cache) Lookup(key Key) (*ConnectResult, bool) {
	s := c.segment(key)
	s.mu.RLock()
	res, ok := s.entries[key]
	s.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return res, ok
}

// Store memoizes a connect result. The caller must not mutate res (or its
// delta) afterwards. Re-storing an existing key is a no-op: the first result
// is as good as any later one (they are equal by purity).
func (c *Cache) Store(key Key, res *ConnectResult) {
	s := c.segment(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.entries[key]; dup {
		return
	}
	for len(s.entries) >= s.max && s.head < len(s.order) {
		delete(s.entries, s.order[s.head])
		s.head++
	}
	// Compact the ring once the dead prefix dominates.
	if s.head > 0 && s.head*2 >= len(s.order) {
		s.order = append(s.order[:0], s.order[s.head:]...)
		s.head = 0
	}
	s.entries[key] = res
	s.order = append(s.order, key)
}

// Stats reports cache effectiveness counters.
type Stats struct {
	Entries int
	Hits    uint64
	Misses  uint64
}

// HitRate returns the fraction of lookups that hit, zero when no lookups
// happened.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	entries := 0
	for i := range c.segs {
		s := &c.segs[i]
		s.mu.RLock()
		entries += len(s.entries)
		s.mu.RUnlock()
	}
	return Stats{Entries: entries, Hits: c.hits.Load(), Misses: c.misses.Load()}
}
