// Package metrics implements the paper's novel Nakamoto-consensus metrics
// (§6): (ε, δ) consensus delay, fairness, mining power utilization,
// subjective time to prune, and time to win — plus the supporting
// measurements the evaluation uses (transaction frequency, fork rate, block
// propagation percentiles for Figure 7).
//
// A Collector implements the node.Recorder interface structurally and
// receives events from every node during a run; Analyze computes the §6
// definitions offline from the logs, mirroring the paper's
// instrument-then-analyze pipeline.
package metrics

import (
	"sync"

	"bitcoinng/internal/node"
	"bitcoinng/internal/types"
)

// accept is one (node, time) receipt of a block.
type accept struct {
	Node int32
	At   int64
}

// tipAt is one tip change on a node.
type tipAt struct {
	At  int64
	Idx int32 // block index of the new tip
}

// blockRecord is the registry entry for one generated block.
type blockRecord struct {
	Info      node.BlockInfo
	Idx       int32
	ParentIdx int32 // -1 for genesis
	Height    int32 // blocks from genesis
	PowHeight int32 // PoW-bearing blocks from genesis (chain weight proxy)
	Accepts   []accept
}

// Collector gathers run events. It is safe for concurrent use (the live TCP
// runtime delivers from multiple goroutines; the simulator from one).
type Collector struct {
	mu     sync.Mutex
	blocks []*blockRecord
	index  map[node.BlockID]int32
	tips   map[int32][]tipAt
	nodes  int32 // max node id seen + 1
	start  int64 // virtual time of collector creation
	// kindCount tracks generated blocks per kind (genesis excluded) so the
	// experiment stop rule polls in O(1) instead of scanning the registry.
	kindCount map[types.BlockKind]int
}

// NewCollector creates a collector. The genesis block must be registered
// before any node events arrive so children can resolve their parent.
func NewCollector(genesis types.Block, startTime int64) *Collector {
	c := &Collector{
		index:     make(map[node.BlockID]int32),
		tips:      make(map[int32][]tipAt),
		start:     startTime,
		kindCount: make(map[types.BlockKind]int),
	}
	rec := &blockRecord{
		Info: node.BlockInfo{
			ID:      genesis.Hash(),
			Kind:    genesis.Kind(),
			Time:    genesis.Time(),
			Size:    genesis.WireSize(),
			Work:    true,
			MinerID: -1,
		},
		Idx:       0,
		ParentIdx: -1,
		Height:    0,
		PowHeight: 0,
	}
	c.blocks = append(c.blocks, rec)
	c.index[rec.Info.ID] = 0
	return c
}

// BlockGenerated implements node.Recorder.
func (c *Collector) BlockGenerated(nodeID int, at int64, info node.BlockInfo) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.noteNode(nodeID)
	if _, dup := c.index[info.ID]; dup {
		return
	}
	parentIdx, ok := c.index[info.Parent]
	if !ok {
		// A block generated on an unknown parent: only possible if the
		// registry missed events; record detached at height 0.
		parentIdx = -1
	}
	rec := &blockRecord{
		Info:      info,
		Idx:       int32(len(c.blocks)),
		ParentIdx: parentIdx,
	}
	if parentIdx >= 0 {
		p := c.blocks[parentIdx]
		rec.Height = p.Height + 1
		rec.PowHeight = p.PowHeight
	}
	if info.Work {
		rec.PowHeight++
	}
	c.index[info.ID] = rec.Idx
	c.blocks = append(c.blocks, rec)
	c.kindCount[info.Kind]++
}

// BlockAccepted implements node.Recorder.
func (c *Collector) BlockAccepted(nodeID int, at int64, blockID node.BlockID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.noteNode(nodeID)
	idx, ok := c.index[blockID]
	if !ok {
		return // acceptance raced generation registration; drop
	}
	c.blocks[idx].Accepts = append(c.blocks[idx].Accepts, accept{Node: int32(nodeID), At: at})
}

// TipChanged implements node.Recorder.
func (c *Collector) TipChanged(nodeID int, at int64, tip node.BlockID, connected, disconnected []node.BlockID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.noteNode(nodeID)
	idx, ok := c.index[tip]
	if !ok {
		return
	}
	c.tips[int32(nodeID)] = append(c.tips[int32(nodeID)], tipAt{At: at, Idx: idx})
}

func (c *Collector) noteNode(nodeID int) {
	if int32(nodeID) >= c.nodes {
		c.nodes = int32(nodeID) + 1
	}
}

// BlockCount returns the number of registered blocks including genesis.
func (c *Collector) BlockCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.blocks)
}

// CountKind returns how many blocks of the given kind have been generated
// (genesis excluded). The experiment harness uses it for its stop rule: the
// paper runs each execution for 50–100 Bitcoin blocks or Bitcoin-NG
// microblocks (§8 "Metrics").
func (c *Collector) CountKind(kind types.BlockKind) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.kindCount[kind]
}
