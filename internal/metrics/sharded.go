package metrics

import (
	"sort"

	"bitcoinng/internal/node"
)

// ShardedCollector adapts a Collector to the sharded event engine without
// giving up deterministic analysis. The Collector itself is mutex-safe, but
// interleaving recordings from concurrently running shards would make
// registry order (and with it block indices) depend on goroutine scheduling.
// Instead each shard appends its events to a private buffer — no locks, no
// cross-shard traffic — and Flush, called at every window barrier while the
// shards are quiescent, merges the buffers into the Collector ordered by
// (event time, shard, shard-local order): the same order the sequential
// engine would have recorded them in, up to exact virtual-time ties between
// shards (see sim.ShardedLoop on why those are negligible).
type ShardedCollector struct {
	c     *Collector
	bufs  [][]recEvent
	merge []recEvent // reused scratch for Flush
}

type recKind uint8

const (
	recGenerated recKind = iota
	recAccepted
	recTipChanged
)

// recEvent is one buffered Recorder call.
type recEvent struct {
	kind  recKind
	node  int
	at    int64
	shard int32
	info  node.BlockInfo // recGenerated
	id    node.BlockID   // recAccepted, recTipChanged (the new tip)
	conn  []node.BlockID // recTipChanged
	disc  []node.BlockID // recTipChanged
}

// NewSharded wraps c for a run on the given number of shards.
func NewSharded(c *Collector, shards int) *ShardedCollector {
	return &ShardedCollector{c: c, bufs: make([][]recEvent, shards)}
}

// Collector returns the wrapped collector (for Analyze and CountKind; call
// only after a Flush, while shards are quiescent).
func (s *ShardedCollector) Collector() *Collector { return s.c }

// Shard returns the buffering recorder for shard i; it must only be used
// from that shard's goroutine.
func (s *ShardedCollector) Shard(i int) node.Recorder {
	return &shardRecorder{owner: s, shard: i}
}

// Flush merges all buffered events into the collector in deterministic
// order. Call at window barriers and before reading CountKind or Analyze.
func (s *ShardedCollector) Flush() {
	total := 0
	for i := range s.bufs {
		total += len(s.bufs[i])
	}
	if total == 0 {
		return
	}
	all := s.merge[:0]
	for i := range s.bufs {
		all = append(all, s.bufs[i]...)
		s.bufs[i] = s.bufs[i][:0]
	}
	// Stable sort by time only: concatenation order supplies the
	// (shard, local-order) tie-break, and per-shard buffers are already
	// time-sorted because each shard's clock is monotonic.
	sort.SliceStable(all, func(i, j int) bool { return all[i].at < all[j].at })
	for i := range all {
		ev := &all[i]
		switch ev.kind {
		case recGenerated:
			s.c.BlockGenerated(ev.node, ev.at, ev.info)
		case recAccepted:
			s.c.BlockAccepted(ev.node, ev.at, ev.id)
		case recTipChanged:
			s.c.TipChanged(ev.node, ev.at, ev.id, ev.conn, ev.disc)
		}
	}
	s.merge = all[:0]
}

// shardRecorder implements node.Recorder by appending to its shard's buffer.
type shardRecorder struct {
	owner *ShardedCollector
	shard int
}

func (r *shardRecorder) BlockGenerated(nodeID int, at int64, info node.BlockInfo) {
	r.owner.bufs[r.shard] = append(r.owner.bufs[r.shard], recEvent{
		kind: recGenerated, node: nodeID, at: at, shard: int32(r.shard), info: info,
	})
}

func (r *shardRecorder) BlockAccepted(nodeID int, at int64, blockID node.BlockID) {
	r.owner.bufs[r.shard] = append(r.owner.bufs[r.shard], recEvent{
		kind: recAccepted, node: nodeID, at: at, shard: int32(r.shard), id: blockID,
	})
}

func (r *shardRecorder) TipChanged(nodeID int, at int64, tip node.BlockID, connected, disconnected []node.BlockID) {
	r.owner.bufs[r.shard] = append(r.owner.bufs[r.shard], recEvent{
		kind: recTipChanged, node: nodeID, at: at, shard: int32(r.shard),
		id: tip, conn: connected, disc: disconnected,
	})
}
