package metrics

import (
	"fmt"
	"io"
)

// BackpressureStat is one named queue-depth series, reduced to aggregates
// so unbounded soaks hold O(1) memory per series.
type BackpressureStat struct {
	Name    string
	Samples int
	Last    float64
	Max     float64
	Mean    float64
}

// Backpressure accumulates per-stage queue-depth samples (mempool depth,
// pending block fetches, signing-lookahead occupancy, ...). Samples are
// recorded at the harness's quiescent maintenance boundaries, so the series
// are a pure function of (config, seed) at any engine parallelism. Series
// order is first-record order — deterministic, never map order.
type Backpressure struct {
	order  []string
	series map[string]*bpSeries
}

type bpSeries struct {
	n         int
	last, max float64
	sum       float64
}

// NewBackpressure returns an empty accumulator.
func NewBackpressure() *Backpressure {
	return &Backpressure{series: make(map[string]*bpSeries)}
}

// Record appends one sample to the named series.
func (b *Backpressure) Record(name string, v float64) {
	s, ok := b.series[name]
	if !ok {
		s = &bpSeries{}
		b.series[name] = s
		b.order = append(b.order, name)
	}
	s.n++
	s.last = v
	s.sum += v
	if v > s.max {
		s.max = v
	}
}

// Stats reduces every series, in first-record order.
func (b *Backpressure) Stats() []BackpressureStat {
	out := make([]BackpressureStat, 0, len(b.order))
	for _, name := range b.order {
		s := b.series[name]
		mean := 0.0
		if s.n > 0 {
			mean = s.sum / float64(s.n)
		}
		out = append(out, BackpressureStat{
			Name:    name,
			Samples: s.n,
			Last:    s.last,
			Max:     s.max,
			Mean:    mean,
		})
	}
	return out
}

// FprintBackpressure renders the stats as a fixed-width table.
func FprintBackpressure(w io.Writer, stats []BackpressureStat) {
	if len(stats) == 0 {
		return
	}
	fmt.Fprintf(w, "%-22s %8s %10s %10s %10s\n", "backpressure", "samples", "last", "mean", "max")
	for _, s := range stats {
		fmt.Fprintf(w, "%-22s %8d %10.1f %10.1f %10.1f\n", s.Name, s.Samples, s.Last, s.Mean, s.Max)
	}
}
