package metrics

import (
	"sort"
	"time"

	"bitcoinng/internal/stats"
)

// AnalyzeOptions tunes the §6 metric computation.
type AnalyzeOptions struct {
	// Epsilon and Delta select the (ε, δ) consensus delay; the paper
	// reports (90%, 90%) (§8 "Metrics").
	Epsilon float64
	Delta   float64
	// Percentile for time-to-prune and time-to-win; the paper uses 0.90.
	Percentile float64
	// LargestMiner is the node holding the most mining power; fairness is
	// computed against it (§6 "Fairness").
	LargestMiner int
	// EndTime closes the measurement window (Unix nanoseconds).
	EndTime int64
	// SampleEvery spaces the consensus-delay sample grid; zero defaults
	// to 1/100th of the run.
	SampleEvery time.Duration
}

// DefaultAnalyzeOptions mirrors the paper's reporting choices.
func DefaultAnalyzeOptions(endTime int64) AnalyzeOptions {
	return AnalyzeOptions{
		Epsilon:      0.90,
		Delta:        0.90,
		Percentile:   0.90,
		LargestMiner: 0,
		EndTime:      endTime,
	}
}

// Report carries every §6 metric for one run, plus the supporting counters
// the §8 figures plot.
type Report struct {
	Duration time.Duration

	// Chain composition.
	Blocks          int // all blocks generated (excluding genesis)
	MainChainBlocks int
	PowBlocks       int // PoW-bearing blocks generated
	MainPowBlocks   int // PoW-bearing blocks on the main chain

	// ConsensusDelay is the (ε, δ)-consensus delay (§6).
	ConsensusDelay time.Duration
	// Fairness is the ratio of the non-largest-miner's main-chain
	// representation to its share of generated PoW blocks; 1.0 is optimal
	// (§6 "Fairness").
	Fairness float64
	// MiningPowerUtilization is main-chain work over total work (§6).
	MiningPowerUtilization float64
	// TimeToPrune is the δ-percentile subjective time to prune (§6).
	TimeToPrune time.Duration
	// TimeToWin is the δ-percentile time to win (§6).
	TimeToWin time.Duration

	// Throughput of the serialized ledger.
	TxFrequency        float64 // regular transactions per second on the main chain
	PayloadBytesPerSec float64
	// ForksPerPowBlock is pruned PoW blocks per main-chain PoW block.
	ForksPerPowBlock float64

	// Block propagation: per-block time for ≥25/50/75% of nodes to accept,
	// reported as the median over blocks (Figure 7's percentile curves).
	PropagationP25 time.Duration
	PropagationP50 time.Duration
	PropagationP75 time.Duration
}

// Analyze computes the report. It is called once, after the run completes.
func (c *Collector) Analyze(opts AnalyzeOptions) *Report {
	c.mu.Lock()
	defer c.mu.Unlock()

	r := &Report{Duration: time.Duration(opts.EndTime - c.start)}
	if opts.Epsilon <= 0 {
		opts.Epsilon = 0.90
	}
	if opts.Delta <= 0 {
		opts.Delta = 0.90
	}
	if opts.Percentile <= 0 {
		opts.Percentile = 0.90
	}

	main := c.finalMainChain()
	onMain := make([]bool, len(c.blocks))
	for _, idx := range main {
		onMain[idx] = true
	}

	// Steady-state window: measurements of rates and agreement start at
	// the first main-chain block, excluding the empty warmup before any
	// mining succeeded (the paper's executions likewise measure over the
	// mined portion of the run).
	warmStart := c.start
	if len(main) > 1 {
		warmStart = c.blocks[main[1]].Info.Time
	}

	c.composition(r, main, onMain, warmStart, opts)
	c.fairness(r, main, onMain, opts)
	c.consensusDelay(r, warmStart, opts)
	c.timeToPrune(r, onMain, opts)
	c.timeToWin(r, main, onMain, opts)
	c.propagation(r)
	return r
}

// finalMainChain picks the heaviest chain in the registry (most cumulative
// PoW blocks, ties to earliest generation) and returns its block indices,
// genesis first.
func (c *Collector) finalMainChain() []int32 {
	best := int32(0)
	for _, rec := range c.blocks {
		b := c.blocks[best]
		if rec.PowHeight > b.PowHeight ||
			(rec.PowHeight == b.PowHeight && rec.Height > b.Height) ||
			(rec.PowHeight == b.PowHeight && rec.Height == b.Height && rec.Info.Time < b.Info.Time) {
			best = rec.Idx
		}
	}
	var chainIdx []int32
	for i := best; i >= 0; i = c.blocks[i].ParentIdx {
		chainIdx = append(chainIdx, i)
	}
	for i, j := 0, len(chainIdx)-1; i < j; i, j = i+1, j-1 {
		chainIdx[i], chainIdx[j] = chainIdx[j], chainIdx[i]
	}
	return chainIdx
}

func (c *Collector) composition(r *Report, main []int32, onMain []bool, warmStart int64, opts AnalyzeOptions) {
	var payload int64
	var txs int64
	for _, rec := range c.blocks[1:] { // skip genesis
		r.Blocks++
		if rec.Info.Work {
			r.PowBlocks++
		}
	}
	for _, idx := range main[1:] {
		rec := c.blocks[idx]
		r.MainChainBlocks++
		if rec.Info.Work {
			r.MainPowBlocks++
		}
		txs += int64(rec.Info.TxCount)
		payload += int64(rec.Info.Payload)
	}
	if secs := (time.Duration(opts.EndTime - warmStart)).Seconds(); secs > 0 {
		r.TxFrequency = float64(txs) / secs
		r.PayloadBytesPerSec = float64(payload) / secs
	}
	if r.PowBlocks > 0 {
		r.MiningPowerUtilization = float64(r.MainPowBlocks) / float64(r.PowBlocks)
	}
	if r.MainPowBlocks > 0 {
		r.ForksPerPowBlock = float64(r.PowBlocks-r.MainPowBlocks) / float64(r.MainPowBlocks)
	}
}

// fairness computes §6's ratio of ratios over PoW-bearing blocks (the
// contention objects: all blocks for Bitcoin, key blocks for Bitcoin-NG,
// whose leaders also author the epoch's microblocks).
func (c *Collector) fairness(r *Report, main []int32, onMain []bool, opts AnalyzeOptions) {
	var mainTotal, mainOthers, allTotal, allOthers float64
	for _, rec := range c.blocks[1:] {
		if !rec.Info.Work {
			continue
		}
		allTotal++
		if rec.Info.MinerID != opts.LargestMiner {
			allOthers++
		}
		if onMain[rec.Idx] {
			mainTotal++
			if rec.Info.MinerID != opts.LargestMiner {
				mainOthers++
			}
		}
	}
	if mainTotal == 0 || allTotal == 0 || allOthers == 0 {
		r.Fairness = 1
		return
	}
	r.Fairness = (mainOthers / mainTotal) / (allOthers / allTotal)
}

// consensusDelay computes the (ε, δ) consensus delay: at sample times t, the
// smallest Δ such that ≥ ε·|N| nodes report the same transition prefix up to
// t−Δ (Figure 4's point-consensus-delay), then takes the δ-percentile over
// samples.
func (c *Collector) consensusDelay(r *Report, warmStart int64, opts AnalyzeOptions) {
	n := int(c.nodes)
	if n == 0 {
		return
	}
	need := int(opts.Epsilon * float64(n))
	if need < 1 {
		need = 1
	}
	interval := int64(opts.SampleEvery)
	if interval <= 0 {
		interval = (opts.EndTime - warmStart) / 100
		if interval <= 0 {
			interval = 1
		}
	}

	// Per-node tip timelines, sorted by time (they arrive in order per
	// node already, but be safe).
	timelines := make(map[int32][]tipAt, len(c.tips))
	for id, tl := range c.tips {
		sorted := make([]tipAt, len(tl))
		copy(sorted, tl)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })
		timelines[id] = sorted
	}
	tipAtTime := func(nodeID int32, t int64) int32 {
		tl := timelines[nodeID]
		// Last event at or before t; genesis (idx 0) before any event.
		lo, hi := 0, len(tl)
		for lo < hi {
			mid := (lo + hi) / 2
			if tl[mid].At <= t {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo == 0 {
			return 0
		}
		return tl[lo-1].Idx
	}

	// chainContains reports whether block idx is an ancestor-or-equal of
	// tip, and returns the next block after idx on the path (or -1 when
	// idx is the tip itself).
	chainContains := func(tip, idx int32) (bool, int32) {
		next := int32(-1)
		cur := tip
		target := c.blocks[idx]
		for cur >= 0 && c.blocks[cur].Height >= target.Height {
			if cur == idx {
				return true, next
			}
			next = cur
			cur = c.blocks[cur].ParentIdx
		}
		return false, -1
	}

	var delays []float64
	for t := warmStart + interval; t <= opts.EndTime; t += interval {
		tips := make([]int32, n)
		for i := 0; i < n; i++ {
			tips[i] = tipAtTime(int32(i), t)
		}
		// Candidate agreement points: blocks on any node's chain, tried
		// newest-first. Collect candidates from the union of current
		// tips' chains.
		seen := make(map[int32]bool)
		var candidates []int32
		for _, tip := range tips {
			for cur := tip; cur >= 0 && !seen[cur]; cur = c.blocks[cur].ParentIdx {
				seen[cur] = true
				candidates = append(candidates, cur)
			}
		}
		sort.Slice(candidates, func(i, j int) bool {
			return c.blocks[candidates[i]].Info.Time > c.blocks[candidates[j]].Info.Time
		})

		delay := float64(t - c.blocks[0].Info.Time) // worst case: genesis
		for _, cand := range candidates {
			ct := c.blocks[cand].Info.Time
			if ct > t {
				continue
			}
			// A node agrees on the prefix ending at cand iff cand is on
			// its chain and the successor (if any) is newer than cand's
			// timestamp — i.e., the node's prefix "up to time ct" is
			// exactly the chain through cand.
			agree := 0
			for _, tip := range tips {
				onChain, next := chainContains(tip, cand)
				if !onChain {
					continue
				}
				if next == -1 || c.blocks[next].Info.Time > ct {
					agree++
				}
			}
			if agree >= need {
				delay = float64(t - ct)
				break
			}
		}
		delays = append(delays, delay)
	}
	if len(delays) > 0 {
		r.ConsensusDelay = time.Duration(stats.Percentile(delays, opts.Delta))
	}
}

// timeToPrune computes, per node and pruned branch, the time between the
// node's receipt of the first branch block and its receipt of the main-chain
// block that outweighs the branch (Figure 5), reporting the δ-percentile.
func (c *Collector) timeToPrune(r *Report, onMain []bool, opts AnalyzeOptions) {
	// Branch roots: blocks off the final main chain whose parent is on it.
	// The branch is the root's whole off-chain subtree; its weight is the
	// max PowHeight within.
	branchOf := make([]int32, len(c.blocks)) // block -> branch root (-1 main)
	for i := range branchOf {
		branchOf[i] = -1
	}
	var branchWeight = make(map[int32]int32)
	// Blocks are registered parents-first, so one forward pass labels.
	for _, rec := range c.blocks {
		if onMain[rec.Idx] || rec.ParentIdx < 0 {
			continue
		}
		root := rec.Idx
		if pr := branchOf[rec.ParentIdx]; pr >= 0 {
			root = pr
		}
		branchOf[rec.Idx] = root
		if rec.PowHeight > branchWeight[root] {
			branchWeight[root] = rec.PowHeight
		}
	}
	if len(branchWeight) == 0 {
		r.TimeToPrune = 0
		return
	}

	// Per node: first receipt per branch, and the receipt times of
	// main-chain blocks by weight.
	type nodeBranchKey struct {
		node   int32
		branch int32
	}
	firstReceipt := make(map[nodeBranchKey]int64)
	for _, rec := range c.blocks {
		br := branchOf[rec.Idx]
		if br < 0 {
			continue
		}
		for _, a := range rec.Accepts {
			k := nodeBranchKey{a.Node, br}
			if t, ok := firstReceipt[k]; !ok || a.At < t {
				firstReceipt[k] = a.At
			}
		}
	}
	// mainReceipts[node] = sorted (weight, at) of main-chain block
	// receipts; to prune a branch of weight w the node needs a main block
	// with weight > w.
	type wAt struct {
		w  int32
		at int64
	}
	mainReceipts := make(map[int32][]wAt)
	for _, rec := range c.blocks {
		if !onMain[rec.Idx] {
			continue
		}
		for _, a := range rec.Accepts {
			mainReceipts[a.Node] = append(mainReceipts[a.Node], wAt{w: rec.PowHeight, at: a.At})
		}
	}
	var samples []float64
	for k, t0 := range firstReceipt {
		need := branchWeight[k.branch]
		pruneAt := int64(-1)
		for _, m := range mainReceipts[k.node] {
			if m.w > need && m.at >= t0 {
				if pruneAt < 0 || m.at < pruneAt {
					pruneAt = m.at
				}
			}
		}
		if pruneAt >= 0 {
			samples = append(samples, float64(pruneAt-t0))
		}
	}
	// firstReceipt is a map: sort the collected samples so the percentile
	// input (and any future tie-broken statistic) is iteration-order free.
	sort.Float64s(samples)
	if len(samples) > 0 {
		r.TimeToPrune = time.Duration(stats.PercentileSorted(samples, opts.Percentile))
	}
}

// timeToWin computes, per main-chain block, the time from its generation to
// the last generation of a block that is not its descendant (zero when
// earlier), reporting the δ-percentile (§8 "Metrics").
func (c *Collector) timeToWin(r *Report, main []int32, onMain []bool, opts AnalyzeOptions) {
	if len(main) <= 1 {
		return
	}
	// For each block, its fork point: the deepest ancestor on the main
	// chain. A block g is NOT a descendant of main blocks deeper than its
	// fork point, so g's generation time competes with all of them.
	heightOnMain := make(map[int32]int32, len(main))
	for _, idx := range main {
		heightOnMain[idx] = c.blocks[idx].Height
	}
	// latestByForkHeight[h] = latest generation time among blocks whose
	// fork point sits at main-chain height h.
	latestByForkHeight := make([]int64, len(main))
	forkPoint := make([]int32, len(c.blocks))
	for _, rec := range c.blocks {
		if rec.ParentIdx < 0 {
			forkPoint[rec.Idx] = 0
			continue
		}
		if onMain[rec.Idx] {
			forkPoint[rec.Idx] = rec.Height
		} else {
			forkPoint[rec.Idx] = forkPoint[rec.ParentIdx]
		}
		h := forkPoint[rec.Idx]
		if int(h) < len(latestByForkHeight) && rec.Info.Time > latestByForkHeight[h] {
			latestByForkHeight[h] = rec.Info.Time
		}
	}
	// prefixMax[h] = latest competing generation among fork heights < h.
	prefixMax := make([]int64, len(main)+1)
	for h := 1; h <= len(main); h++ {
		prefixMax[h] = prefixMax[h-1]
		if latestByForkHeight[h-1] > prefixMax[h] {
			prefixMax[h] = latestByForkHeight[h-1]
		}
	}
	var samples []float64
	for _, idx := range main[1:] {
		rec := c.blocks[idx]
		last := prefixMax[rec.Height]
		ttw := last - rec.Info.Time
		if ttw < 0 {
			ttw = 0
		}
		samples = append(samples, float64(ttw))
	}
	if len(samples) > 0 {
		r.TimeToWin = time.Duration(stats.Percentile(samples, opts.Percentile))
	}
}

// propagation reports the median over blocks of the time for 25/50/75% of
// nodes to accept each block (Figure 7's percentile curves).
func (c *Collector) propagation(r *Report) {
	n := int(c.nodes)
	if n == 0 {
		return
	}
	var p25s, p50s, p75s []float64
	for _, rec := range c.blocks[1:] {
		if len(rec.Accepts) == 0 {
			continue
		}
		delays := make([]float64, 0, len(rec.Accepts))
		for _, a := range rec.Accepts {
			delays = append(delays, float64(a.At-rec.Info.Time))
		}
		sort.Float64s(delays)
		// Time to reach a fraction of ALL nodes, not just receivers:
		// index into the sorted delays at fraction*n.
		at := func(frac float64) (float64, bool) {
			idx := int(frac*float64(n)) - 1
			if idx < 0 {
				idx = 0
			}
			if idx >= len(delays) {
				return 0, false // never reached that many nodes
			}
			return delays[idx], true
		}
		if v, ok := at(0.25); ok {
			p25s = append(p25s, v)
		}
		if v, ok := at(0.50); ok {
			p50s = append(p50s, v)
		}
		if v, ok := at(0.75); ok {
			p75s = append(p75s, v)
		}
	}
	if len(p25s) > 0 {
		r.PropagationP25 = time.Duration(stats.Percentile(p25s, 0.5))
	}
	if len(p50s) > 0 {
		r.PropagationP50 = time.Duration(stats.Percentile(p50s, 0.5))
	}
	if len(p75s) > 0 {
		r.PropagationP75 = time.Duration(stats.Percentile(p75s, 0.5))
	}
}
