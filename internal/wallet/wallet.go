// Package wallet implements key management and transaction construction on
// top of the UTXO state machine: the "users command addresses, and send
// Bitcoins by forming a transaction from her address to another's address"
// role of §3.
package wallet

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"bitcoinng/internal/chain"
	"bitcoinng/internal/crypto"
	"bitcoinng/internal/types"
	"bitcoinng/internal/utxo"
)

// Wallet errors.
var (
	ErrInsufficientFunds = errors.New("wallet: insufficient spendable funds")
	ErrBadAmount         = errors.New("wallet: amount must be positive")
)

// Wallet owns one key pair and builds transactions against a chain state.
type Wallet struct {
	key *crypto.PrivateKey
}

// New creates a wallet around an existing key.
func New(key *crypto.PrivateKey) *Wallet { return &Wallet{key: key} }

// Generate creates a wallet with a fresh key from the entropy source.
func Generate(rand io.Reader) (*Wallet, error) {
	key, err := crypto.GenerateKey(rand)
	if err != nil {
		return nil, err
	}
	return &Wallet{key: key}, nil
}

// Key returns the wallet's private key (the protocol node needs it for
// microblock signing when this wallet's owner leads).
func (w *Wallet) Key() *crypto.PrivateKey { return w.key }

// Address returns the wallet's receiving address.
func (w *Wallet) Address() crypto.Address { return w.key.Public().Addr() }

// utxoRef is one spendable output found during a scan.
type utxoRef struct {
	op    types.OutPoint
	entry utxo.Entry
}

// spendable lists the wallet's usable outputs at the chain tip: unrevoked,
// and past coinbase maturity.
func (w *Wallet) spendable(st *chain.State) []utxoRef {
	addr := w.Address()
	height := st.KeyHeight()
	maturity := uint64(st.Params().CoinbaseMaturity)
	var out []utxoRef
	st.UTXO().Range(func(op types.OutPoint, e utxo.Entry) bool {
		if e.To != addr || e.Revoked {
			return true
		}
		if e.Coinbase && height-e.Height < maturity {
			return true
		}
		out = append(out, utxoRef{op: op, entry: e})
		return true
	})
	// Deterministic order: largest first, then outpoint for stability.
	sort.Slice(out, func(i, j int) bool {
		if out[i].entry.Value != out[j].entry.Value {
			return out[i].entry.Value > out[j].entry.Value
		}
		if out[i].op.TxID != out[j].op.TxID {
			return out[i].op.TxID.String() < out[j].op.TxID.String()
		}
		return out[i].op.Index < out[j].op.Index
	})
	return out
}

// Balance returns the wallet's spendable balance at the tip.
func (w *Wallet) Balance(st *chain.State) types.Amount {
	var sum types.Amount
	for _, ref := range w.spendable(st) {
		sum += ref.entry.Value
	}
	return sum
}

// Pay builds and signs a transaction sending amount to `to`, paying fee on
// top, returning change to the wallet. Coins are selected largest-first.
func (w *Wallet) Pay(st *chain.State, to crypto.Address, amount, fee types.Amount) (*types.Transaction, error) {
	if amount <= 0 || fee < 0 {
		return nil, fmt.Errorf("%w: amount %d fee %d", ErrBadAmount, amount, fee)
	}
	need := amount + fee
	var (
		selected []utxoRef
		total    types.Amount
	)
	for _, ref := range w.spendable(st) {
		selected = append(selected, ref)
		total += ref.entry.Value
		if total >= need {
			break
		}
	}
	if total < need {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrInsufficientFunds, total, need)
	}
	tx := &types.Transaction{
		Kind:    types.TxRegular,
		Inputs:  make([]types.TxInput, len(selected)),
		Outputs: []types.TxOutput{{Value: amount, To: to}},
	}
	for i, ref := range selected {
		tx.Inputs[i].Prev = ref.op
	}
	if change := total - need; change > 0 {
		tx.Outputs = append(tx.Outputs, types.TxOutput{Value: change, To: w.Address()})
	}
	// All public keys must be in place before the first signature: the
	// signature hash covers every input's key.
	for i := range tx.Inputs {
		tx.Inputs[i].PubKey = w.key.Public()
	}
	for i := range tx.Inputs {
		tx.SignInput(i, w.key)
	}
	return tx, nil
}
