package wallet

import (
	"errors"
	"math/rand"
	"testing"

	"bitcoinng/internal/bitcoin"
	"bitcoinng/internal/chain"
	"bitcoinng/internal/crypto"
	"bitcoinng/internal/types"
)

// newState builds a chain whose genesis funds the wallet with the given
// output values.
func newState(t *testing.T, w *Wallet, values ...types.Amount) *chain.State {
	t.Helper()
	payouts := make([]types.TxOutput, len(values))
	for i, v := range values {
		payouts[i] = types.TxOutput{Value: v, To: w.Address()}
	}
	genesis := types.GenesisBlock(types.GenesisSpec{
		Target:  crypto.EasiestTarget,
		Payouts: payouts,
	})
	params := types.DefaultParams()
	params.RandomTieBreak = false
	st, err := chain.New(genesis, params, bitcoin.Rules{AllowSimulatedPoW: true}, &chain.HeaviestChain{})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func testWallet(t *testing.T, seed int64) *Wallet {
	t.Helper()
	w, err := Generate(rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestBalance(t *testing.T) {
	w := testWallet(t, 1)
	st := newState(t, w, 100, 250)
	if got := w.Balance(st); got != 350 {
		t.Errorf("balance = %d, want 350", got)
	}
	other := testWallet(t, 2)
	if got := other.Balance(st); got != 0 {
		t.Errorf("stranger balance = %d", got)
	}
}

func TestPayBuildsValidTransaction(t *testing.T) {
	w := testWallet(t, 3)
	st := newState(t, w, 500)
	dest := testWallet(t, 4).Address()

	tx, err := w.Pay(st, dest, 300, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.CheckWellFormed(); err != nil {
		t.Fatalf("built tx invalid: %v", err)
	}
	// Outputs: 300 to dest, 190 change.
	if tx.Outputs[0].Value != 300 || tx.Outputs[0].To != dest {
		t.Errorf("payment output wrong: %+v", tx.Outputs[0])
	}
	if len(tx.Outputs) != 2 || tx.Outputs[1].Value != 190 || tx.Outputs[1].To != w.Address() {
		t.Errorf("change output wrong")
	}
	// It actually connects through the state machine.
	fees := applyViaBlock(t, st, tx)
	if fees != 10 {
		t.Errorf("collected fee = %d, want 10", fees)
	}
	if got := w.Balance(st); got != 190 {
		t.Errorf("post-spend balance = %d, want 190", got)
	}
}

// applyViaBlock mines the tx into a block on st and returns its fee.
func applyViaBlock(t *testing.T, st *chain.State, tx *types.Transaction) types.Amount {
	t.Helper()
	key, err := crypto.GenerateKey(rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	txs := []*types.Transaction{
		{
			Kind:    types.TxCoinbase,
			Outputs: []types.TxOutput{{Value: st.Params().Subsidy, To: key.Public().Addr()}},
			Height:  st.KeyHeight() + 1,
		},
		tx,
	}
	b := &types.PowBlock{
		Header: types.PowHeader{
			Prev:       st.Tip().Hash(),
			MerkleRoot: crypto.MerkleRoot(types.TxIDs(txs)),
			TimeNanos:  st.Tip().Block().Time() + 1,
			Target:     crypto.EasiestTarget,
		},
		Txs:          txs,
		SimulatedPoW: true,
	}
	if _, err := st.AddBlock(b, b.Header.TimeNanos); err != nil {
		t.Fatalf("block with wallet tx rejected: %v", err)
	}
	return st.FeeTotal(b.Hash()) // coinbase contributes zero
}

func TestPayMultiInput(t *testing.T) {
	w := testWallet(t, 5)
	st := newState(t, w, 100, 100, 100)
	dest := crypto.Address{9}

	// 250 needs all three outputs (selection is largest-first, all equal).
	tx, err := w.Pay(st, dest, 240, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(tx.Inputs) != 3 {
		t.Fatalf("inputs = %d, want 3", len(tx.Inputs))
	}
	if err := tx.CheckWellFormed(); err != nil {
		t.Fatalf("multi-input tx invalid: %v", err)
	}
	applyViaBlock(t, st, tx)
	if got := w.Balance(st); got != 50 {
		t.Errorf("change = %d, want 50", got)
	}
}

func TestPayInsufficientFunds(t *testing.T) {
	w := testWallet(t, 6)
	st := newState(t, w, 100)
	if _, err := w.Pay(st, crypto.Address{1}, 100, 1); !errors.Is(err, ErrInsufficientFunds) {
		t.Errorf("err = %v", err)
	}
	if _, err := w.Pay(st, crypto.Address{1}, 0, 0); !errors.Is(err, ErrBadAmount) {
		t.Errorf("zero amount err = %v", err)
	}
}

func TestPaySkipsImmatureCoinbase(t *testing.T) {
	w := testWallet(t, 7)
	st := newState(t, w, 50)

	// Mine a block whose coinbase pays the wallet: immature for 100 blocks.
	txs := []*types.Transaction{{
		Kind:    types.TxCoinbase,
		Outputs: []types.TxOutput{{Value: 1000, To: w.Address()}},
		Height:  1,
	}}
	b := &types.PowBlock{
		Header: types.PowHeader{
			Prev:       st.Tip().Hash(),
			MerkleRoot: crypto.MerkleRoot(types.TxIDs(txs)),
			TimeNanos:  1,
			Target:     crypto.EasiestTarget,
		},
		Txs:          txs,
		SimulatedPoW: true,
	}
	if _, err := st.AddBlock(b, 1); err != nil {
		t.Fatal(err)
	}
	// Balance counts only the mature 50.
	if got := w.Balance(st); got != 50 {
		t.Errorf("balance = %d, want 50 (coinbase immature)", got)
	}
	if _, err := w.Pay(st, crypto.Address{2}, 500, 0); !errors.Is(err, ErrInsufficientFunds) {
		t.Errorf("immature spend err = %v", err)
	}
}
