// Package scenario is the composable fault-and-attack scripting layer: a
// Scenario is an ordered list of timed steps (partition the network, heal
// it, churn mining power, equivocate a leader, spike latency) that both the
// interactive cluster (root package) and the measured experiment runner
// (internal/experiment) execute on their event loops. New adversarial
// scenarios are a few lines of composition instead of a new copy of the
// harness's assembly code.
package scenario

import (
	"fmt"
	"time"

	"bitcoinng/internal/types"
)

// Runtime is the harness surface steps act on. The root package's Cluster
// and the experiment runner both implement it; steps stay harness-agnostic.
type Runtime interface {
	// Size returns the number of nodes.
	Size() int
	// Partition cuts the network into the given groups of node indices;
	// nodes not listed join group 0. Messages across groups are lost. An
	// out-of-range node is an error.
	Partition(groups ...[]int) error
	// Heal removes any partition.
	Heal()
	// SetMiningRate adjusts one node's simulated mining power
	// (blocks/sec) and starts its miner; zero pauses it (§5.2 churn). An
	// out-of-range node is an error.
	SetMiningRate(node int, blocksPerSec float64) error
	// ScaleLatency sets the absolute factor every link's propagation delay
	// is scaled by: calls replace one another rather than composing, and 1
	// restores the configured model. A factor ≤ 0 is an error.
	ScaleLatency(factor float64) error
	// Equivocate makes the given node — which must currently lead — sign
	// two conflicting microblocks and deliver them to disjoint parts of
	// the network (§4.5). Nil transactions produce empty siblings.
	Equivocate(leader int, txA, txB *types.Transaction) error
	// AdoptStrategy switches one node's mining strategy to the registered
	// strategy name (internal/strategy) from this step onward; withheld
	// blocks of the previous strategy are abandoned. An out-of-range node,
	// an unknown name, or a client without strategy support is an error.
	AdoptStrategy(node int, name string) error
	// Crash tears down one node: its in-memory state (chain tree, mempool,
	// pending fetches, unflushed relay queues, armed timers) is discarded
	// and it detaches from the network; only its durable block archive
	// survives. Crashing an out-of-range or already-down node is an error.
	Crash(node int) error
	// Restart rebuilds a crashed node from its durable prefix and rejoins
	// it to the network, kicking catch-up sync for whatever it missed.
	// Restarting an out-of-range or running node is an error.
	Restart(node int) error
	// SetLoss installs network-wide lossy-link fault probabilities (drop,
	// duplicate, reorder per message, each scaled by a per-link
	// deterministic factor); all-zero restores clean links. A probability
	// outside [0,1] is an error.
	SetLoss(drop, duplicate, reorder float64) error
	// Leader returns the index of the first running node that considers
	// itself the current epoch leader (Bitcoin-NG's microblock producer),
	// or -1 when none does — protocols without a leader role always return
	// -1. Scripts use it to target faults at whoever leads mid-epoch.
	Leader() int
}

// Step is one scripted action against a Runtime.
type Step struct {
	// Name labels the step in error reports.
	Name string
	// Do performs the action.
	Do func(rt Runtime) error
}

// TimedStep is a Step armed at an offset on the event loop.
type TimedStep struct {
	// Offset is the virtual time from the scenario's start.
	Offset time.Duration
	Step   Step
}

// At schedules a step at the given offset from the scenario's start.
func At(offset time.Duration, step Step) TimedStep {
	return TimedStep{Offset: offset, Step: step}
}

// Scenario is an ordered list of timed steps. Steps sharing an offset fire
// in declaration order.
type Scenario struct {
	Steps []TimedStep
}

// New composes a scenario from timed steps.
func New(steps ...TimedStep) *Scenario { return &Scenario{Steps: steps} }

// Add appends further steps and returns the scenario for chaining.
func (s *Scenario) Add(steps ...TimedStep) *Scenario {
	s.Steps = append(s.Steps, steps...)
	return s
}

// Duration returns the offset of the last-firing step.
func (s *Scenario) Duration() time.Duration {
	var max time.Duration
	for _, ts := range s.Steps {
		if ts.Offset > max {
			max = ts.Offset
		}
	}
	return max
}

// Schedule arms every step on the harness's event loop, offsets relative to
// now. A step error is reported to onErr (if non-nil) and does not stop the
// remaining steps.
func (s *Scenario) Schedule(after func(time.Duration, func()), rt Runtime, onErr func(TimedStep, error)) {
	for _, ts := range s.Steps {
		ts := ts
		after(ts.Offset, func() {
			if err := ts.Step.Do(rt); err != nil && onErr != nil {
				onErr(ts, err)
			}
		})
	}
}

// checkNode surfaces a bad node index as a step error — scripts are the
// public scripting surface, and an unchecked index would otherwise panic
// deep inside the event loop long after the typo.
func checkNode(rt Runtime, node int) error {
	if node < 0 || node >= rt.Size() {
		return fmt.Errorf("scenario: node %d out of range (network size %d)", node, rt.Size())
	}
	return nil
}

// Partition cuts the network into the given groups of node indices.
func Partition(groups ...[]int) Step {
	return Step{Name: "partition", Do: func(rt Runtime) error {
		for _, members := range groups {
			for _, id := range members {
				if err := checkNode(rt, id); err != nil {
					return err
				}
			}
		}
		return rt.Partition(groups...)
	}}
}

// Heal removes the partition; chains reconcile as the next blocks announce.
func Heal() Step {
	return Step{Name: "heal", Do: func(rt Runtime) error {
		rt.Heal()
		return nil
	}}
}

// Churn sets one node's mining rate (blocks/sec); zero pauses its miner.
func Churn(node int, blocksPerSec float64) Step {
	return Step{Name: "churn", Do: func(rt Runtime) error {
		if err := checkNode(rt, node); err != nil {
			return err
		}
		return rt.SetMiningRate(node, blocksPerSec)
	}}
}

// ChurnAll sets every node's mining rate — the §5.2 "mining power suddenly
// leaves/returns" experiments.
func ChurnAll(blocksPerSec float64) Step {
	return Step{Name: "churn-all", Do: func(rt Runtime) error {
		for i := 0; i < rt.Size(); i++ {
			if err := rt.SetMiningRate(i, blocksPerSec); err != nil {
				return err
			}
		}
		return nil
	}}
}

// Equivocate makes the given leader sign two conflicting microblocks, each
// carrying one of the transactions (nil for empty), delivered to disjoint
// parts of the network (§4.5).
func Equivocate(leader int, txA, txB *types.Transaction) Step {
	return Step{Name: "equivocate", Do: func(rt Runtime) error {
		if err := checkNode(rt, leader); err != nil {
			return err
		}
		return rt.Equivocate(leader, txA, txB)
	}}
}

// LatencySpike sets the absolute factor every link's propagation delay is
// scaled by, relative to the configured model. Spikes replace one another
// rather than composing — LatencySpike(2) then LatencySpike(3) is a 3x
// spike, not 6x — and LatencySpike(1) ends the spike. A factor ≤ 0 is a
// step error: zero latency would be indistinguishable from "unscaled" on
// some engines and stalls the sharded engine's lookahead.
func LatencySpike(factor float64) Step {
	return Step{Name: "latency-spike", Do: func(rt Runtime) error {
		if factor <= 0 {
			return fmt.Errorf("scenario: latency factor %v must be > 0", factor)
		}
		return rt.ScaleLatency(factor)
	}}
}

// AdoptStrategy switches one node's mining strategy to the registered
// strategy name (internal/strategy) from this step onward — attacks can
// switch on (and off, via "honest") mid-run.
func AdoptStrategy(node int, name string) Step {
	return Step{Name: "adopt-strategy", Do: func(rt Runtime) error {
		if err := checkNode(rt, node); err != nil {
			return err
		}
		return rt.AdoptStrategy(node, name)
	}}
}

// Crash tears down one node's in-memory state and detaches it from the
// network; only its durable block archive survives for a later Restart.
func Crash(node int) Step {
	return Step{Name: "crash", Do: func(rt Runtime) error {
		if err := checkNode(rt, node); err != nil {
			return err
		}
		return rt.Crash(node)
	}}
}

// Restart rebuilds a crashed node from its durable prefix, rejoins it to the
// network, and kicks catch-up sync for the blocks it missed while down.
func Restart(node int) Step {
	return Step{Name: "restart", Do: func(rt Runtime) error {
		if err := checkNode(rt, node); err != nil {
			return err
		}
		return rt.Restart(node)
	}}
}

// Lossy installs network-wide lossy-link fault probabilities: each message
// is independently dropped, duplicated, or delayed (reordered) with the
// given per-message probabilities, scaled per directed link by a
// seed-deterministic susceptibility factor. Lossy(0, 0, 0) restores clean
// links. Probabilities outside [0,1] are a step error.
func Lossy(drop, duplicate, reorder float64) Step {
	return Step{Name: "lossy", Do: func(rt Runtime) error {
		for _, p := range []float64{drop, duplicate, reorder} {
			if p < 0 || p > 1 {
				return fmt.Errorf("scenario: loss probability %v outside [0,1]", p)
			}
		}
		return rt.SetLoss(drop, duplicate, reorder)
	}}
}

// Call wraps an arbitrary action — mine a block, assert mid-run state,
// print a phase report — as a named step.
func Call(name string, fn func(rt Runtime) error) Step {
	return Step{Name: name, Do: fn}
}
