package scenario

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"bitcoinng/internal/types"
)

// fakeRuntime records every action so step dispatch can be asserted.
type fakeRuntime struct {
	size   int
	log    []string
	eqErr  error
	eqTxsA *types.Transaction
}

func (f *fakeRuntime) Size() int { return f.size }
func (f *fakeRuntime) Partition(groups ...[]int) error {
	f.log = append(f.log, fmt.Sprintf("partition(%d groups)", len(groups)))
	return nil
}
func (f *fakeRuntime) Heal() { f.log = append(f.log, "heal") }
func (f *fakeRuntime) SetMiningRate(node int, rate float64) error {
	f.log = append(f.log, fmt.Sprintf("rate(%d,%g)", node, rate))
	return nil
}
func (f *fakeRuntime) ScaleLatency(factor float64) error {
	f.log = append(f.log, fmt.Sprintf("latency(%g)", factor))
	return nil
}
func (f *fakeRuntime) AdoptStrategy(node int, name string) error {
	f.log = append(f.log, fmt.Sprintf("strategy(%d,%s)", node, name))
	return nil
}
func (f *fakeRuntime) Equivocate(leader int, txA, txB *types.Transaction) error {
	f.log = append(f.log, fmt.Sprintf("equivocate(%d)", leader))
	f.eqTxsA = txA
	return f.eqErr
}
func (f *fakeRuntime) Crash(node int) error {
	f.log = append(f.log, fmt.Sprintf("crash(%d)", node))
	return nil
}
func (f *fakeRuntime) Restart(node int) error {
	f.log = append(f.log, fmt.Sprintf("restart(%d)", node))
	return nil
}
func (f *fakeRuntime) SetLoss(drop, duplicate, reorder float64) error {
	f.log = append(f.log, fmt.Sprintf("loss(%g,%g,%g)", drop, duplicate, reorder))
	return nil
}
func (f *fakeRuntime) Leader() int { return -1 }

// fakeClock is a sorted-by-insertion-order scheduler.
type fakeClock struct {
	events []struct {
		at time.Duration
		fn func()
	}
}

func (c *fakeClock) after(d time.Duration, fn func()) {
	c.events = append(c.events, struct {
		at time.Duration
		fn func()
	}{d, fn})
}

// fire runs events in offset order, stable for equal offsets.
func (c *fakeClock) fire() {
	for next := time.Duration(-1); ; {
		var lowest time.Duration = 1<<63 - 1
		for _, e := range c.events {
			if e.at > next && e.at < lowest {
				lowest = e.at
			}
		}
		if lowest == 1<<63-1 {
			return
		}
		for _, e := range c.events {
			if e.at == lowest {
				e.fn()
			}
		}
		next = lowest
	}
}

func TestScenarioStepsDispatchInOrder(t *testing.T) {
	rt := &fakeRuntime{size: 3}
	clock := &fakeClock{}
	s := New(
		At(2*time.Minute, Heal()),
		At(time.Minute, Partition([]int{0}, []int{1, 2})),
		At(3*time.Minute, ChurnAll(0.5)),
		At(4*time.Minute, LatencySpike(10)),
		At(4*time.Minute, Churn(1, 0)),
	)
	if got, want := s.Duration(), 4*time.Minute; got != want {
		t.Fatalf("Duration() = %v, want %v", got, want)
	}
	s.Schedule(clock.after, rt, nil)
	clock.fire()

	want := []string{
		"partition(2 groups)", "heal",
		"rate(0,0.5)", "rate(1,0.5)", "rate(2,0.5)",
		"latency(10)", "rate(1,0)",
	}
	if len(rt.log) != len(want) {
		t.Fatalf("log = %v, want %v", rt.log, want)
	}
	for i := range want {
		if rt.log[i] != want[i] {
			t.Errorf("log[%d] = %q, want %q", i, rt.log[i], want[i])
		}
	}
}

func TestScenarioStepErrorsReported(t *testing.T) {
	boom := errors.New("boom")
	rt := &fakeRuntime{size: 2, eqErr: boom}
	clock := &fakeClock{}

	var failed []TimedStep
	var errs []error
	s := New(
		At(time.Second, Equivocate(0, nil, nil)),
		At(2*time.Second, Heal()), // later steps still run
	)
	s.Schedule(clock.after, rt,
		func(ts TimedStep, err error) { failed, errs = append(failed, ts), append(errs, err) })
	clock.fire()

	if len(errs) != 1 || !errors.Is(errs[0], boom) {
		t.Fatalf("errors = %v, want [boom]", errs)
	}
	if failed[0].Step.Name != "equivocate" || failed[0].Offset != time.Second {
		t.Errorf("failed step = %q at %v", failed[0].Step.Name, failed[0].Offset)
	}
	if rt.log[len(rt.log)-1] != "heal" {
		t.Error("steps after a failing step did not run")
	}
}

func TestScenarioRejectsOutOfRangeNodes(t *testing.T) {
	rt := &fakeRuntime{size: 3}
	clock := &fakeClock{}
	var errs []error
	s := New(
		At(time.Second, Churn(3, 0)),
		At(time.Second, Partition([]int{0}, []int{5})),
		At(time.Second, Equivocate(-1, nil, nil)),
	)
	s.Schedule(clock.after, rt, func(_ TimedStep, err error) { errs = append(errs, err) })
	clock.fire()

	if len(errs) != 3 {
		t.Fatalf("errors = %v, want 3 out-of-range errors", errs)
	}
	for _, err := range errs {
		if !strings.Contains(err.Error(), "out of range") {
			t.Errorf("error %q does not name the out-of-range index", err)
		}
	}
	if len(rt.log) != 0 {
		t.Errorf("out-of-range steps reached the runtime: %v", rt.log)
	}
}

func TestScenarioAddComposes(t *testing.T) {
	s := New(At(time.Second, Heal()))
	s.Add(At(5*time.Second, Heal()), At(3*time.Second, Heal()))
	if len(s.Steps) != 3 {
		t.Fatalf("Steps = %d, want 3", len(s.Steps))
	}
	if s.Duration() != 5*time.Second {
		t.Fatalf("Duration() = %v, want 5s", s.Duration())
	}
}

// TestLatencySpikeRejectsNonPositiveFactor: a factor ≤ 0 is a step error
// and never reaches the runtime.
func TestLatencySpikeRejectsNonPositiveFactor(t *testing.T) {
	for _, bad := range []float64{0, -2} {
		rt := &fakeRuntime{size: 2}
		if err := LatencySpike(bad).Do(rt); err == nil {
			t.Errorf("LatencySpike(%v) accepted", bad)
		}
		if len(rt.log) != 0 {
			t.Errorf("LatencySpike(%v) reached the runtime: %v", bad, rt.log)
		}
	}
	rt := &fakeRuntime{size: 2}
	if err := LatencySpike(2.5).Do(rt); err != nil {
		t.Fatalf("LatencySpike(2.5): %v", err)
	}
	if len(rt.log) != 1 || rt.log[0] != "latency(2.5)" {
		t.Errorf("runtime log = %v", rt.log)
	}
}

// TestAdoptStrategyStepDispatch: the step validates the node index and
// forwards name and index to the runtime.
func TestAdoptStrategyStepDispatch(t *testing.T) {
	rt := &fakeRuntime{size: 3}
	if err := AdoptStrategy(2, "greedymine").Do(rt); err != nil {
		t.Fatal(err)
	}
	if len(rt.log) != 1 || rt.log[0] != "strategy(2,greedymine)" {
		t.Errorf("runtime log = %v", rt.log)
	}
	if err := AdoptStrategy(3, "honest").Do(rt); err == nil {
		t.Error("out-of-range node accepted")
	}
}
