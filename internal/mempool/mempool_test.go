package mempool

import (
	"errors"
	"math/rand"
	"runtime"
	"testing"

	"bitcoinng/internal/crypto"
	"bitcoinng/internal/types"
)

func testKey(t testing.TB, seed int64) *crypto.PrivateKey {
	t.Helper()
	k, err := crypto.GenerateKey(rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("GenerateKey: %v", err)
	}
	return k
}

func tx(t *testing.T, key *crypto.PrivateKey, prevIdx uint32, pad int) *types.Transaction {
	t.Helper()
	out := &types.Transaction{
		Kind:    types.TxRegular,
		Inputs:  []types.TxInput{{Prev: types.OutPoint{Index: prevIdx}}},
		Outputs: []types.TxOutput{{Value: 1, To: crypto.Address{1}}},
		Padding: make([]byte, pad),
	}
	out.SignInput(0, key)
	return out
}

func TestAddSelectFIFO(t *testing.T) {
	p := New()
	key := testKey(t, 1)
	a, b, c := tx(t, key, 1, 0), tx(t, key, 2, 0), tx(t, key, 3, 0)
	for _, x := range []*types.Transaction{a, b, c} {
		if err := p.Add(x); err != nil {
			t.Fatal(err)
		}
	}
	got := p.Select(1 << 20)
	if len(got) != 3 || got[0].ID() != a.ID() || got[1].ID() != b.ID() || got[2].ID() != c.ID() {
		t.Error("selection not FIFO")
	}
}

func TestAddRejectsDuplicateAndConflict(t *testing.T) {
	p := New()
	key := testKey(t, 2)
	a := tx(t, key, 1, 0)
	if err := p.Add(a); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(a); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate err = %v", err)
	}
	// Different tx spending the same outpoint.
	b := tx(t, key, 1, 4)
	if err := p.Add(b); !errors.Is(err, ErrConflict) {
		t.Errorf("conflict err = %v", err)
	}
	// Coinbase never pools.
	cb := &types.Transaction{Kind: types.TxCoinbase, Outputs: []types.TxOutput{{Value: 1}}}
	if err := p.Add(cb); !errors.Is(err, ErrKind) {
		t.Errorf("coinbase err = %v", err)
	}
}

func TestSelectRespectsSizeBudget(t *testing.T) {
	p := New()
	key := testKey(t, 3)
	a := tx(t, key, 1, 0)
	size := a.WireSize()
	if err := p.Add(a); err != nil {
		t.Fatal(err)
	}
	b := tx(t, key, 2, 0)
	if err := p.Add(b); err != nil {
		t.Fatal(err)
	}
	got := p.Select(size) // room for exactly one
	if len(got) != 1 {
		t.Fatalf("selected %d txs, want 1", len(got))
	}
	if got := p.Select(size - 1); len(got) != 0 {
		t.Errorf("selected %d txs with insufficient budget", len(got))
	}
	if got := p.Select(2 * size); len(got) != 2 {
		t.Errorf("selected %d txs, want 2", len(got))
	}
}

func TestSelectSkipsOversizedButKeepsGoing(t *testing.T) {
	p := New()
	key := testKey(t, 4)
	big := tx(t, key, 1, 5000)
	small := tx(t, key, 2, 0)
	if err := p.Add(big); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(small); err != nil {
		t.Fatal(err)
	}
	got := p.Select(small.WireSize())
	if len(got) != 1 || got[0].ID() != small.ID() {
		t.Error("oversized head blocked selection")
	}
}

func TestRemoveConfirmedEvictsConflicts(t *testing.T) {
	p := New()
	key := testKey(t, 5)
	pooled := tx(t, key, 1, 0)
	if err := p.Add(pooled); err != nil {
		t.Fatal(err)
	}
	// A confirmed tx spending the same outpoint but not identical.
	confirmed := tx(t, key, 1, 8)
	p.RemoveConfirmed([]*types.Transaction{confirmed})
	if p.Contains(pooled.ID()) {
		t.Error("conflicting pooled tx survived confirmation")
	}
	if p.Len() != 0 {
		t.Errorf("pool len = %d", p.Len())
	}
}

func TestReinsertAfterReorg(t *testing.T) {
	p := New()
	key := testKey(t, 6)
	a := tx(t, key, 1, 0)
	if err := p.Add(a); err != nil {
		t.Fatal(err)
	}
	p.RemoveConfirmed([]*types.Transaction{a})
	if p.Len() != 0 {
		t.Fatal("tx not removed")
	}
	// Disconnected block returns its transactions; coinbase is dropped.
	cb := &types.Transaction{Kind: types.TxCoinbase, Outputs: []types.TxOutput{{Value: 1}}, Height: 4}
	p.Reinsert([]*types.Transaction{a, cb})
	if !p.Contains(a.ID()) {
		t.Error("regular tx not reinserted")
	}
	if p.Len() != 1 {
		t.Errorf("pool len = %d, want 1", p.Len())
	}
}

func TestCompactionPreservesOrder(t *testing.T) {
	p := New()
	key := testKey(t, 7)
	var kept []*types.Transaction
	for i := uint32(1); i <= 60; i++ {
		x := tx(t, key, i, 0)
		if err := p.Add(x); err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			kept = append(kept, x)
		}
	}
	// Remove all odd-index txs to trigger compaction.
	var confirmed []*types.Transaction
	for i := uint32(1); i <= 60; i += 2 {
		confirmed = append(confirmed, tx(t, key, i, 0))
	}
	p.RemoveConfirmed(confirmed)
	got := p.Select(1 << 30)
	if len(got) != len(kept) {
		t.Fatalf("select returned %d, want %d", len(got), len(kept))
	}
	for i := range got {
		if got[i].ID() != kept[i].ID() {
			t.Fatalf("order broken at %d after compaction", i)
		}
	}
}

// txB is tx for benchmarks (testing.TB).
func txB(tb testing.TB, key *crypto.PrivateKey, prevIdx uint32, pad int) *types.Transaction {
	tb.Helper()
	out := &types.Transaction{
		Kind:    types.TxRegular,
		Inputs:  []types.TxInput{{Prev: types.OutPoint{Index: prevIdx}}},
		Outputs: []types.TxOutput{{Value: 1, To: crypto.Address{1}}},
		Padding: make([]byte, pad),
	}
	out.SignInput(0, key)
	return out
}

// TestSelectEarlyExit: once the remaining budget is below the smallest
// pooled transaction, Select must stop and still return the correct set.
func TestSelectEarlyExit(t *testing.T) {
	p := New()
	key := testKey(t, 9)
	var txs []*types.Transaction
	for i := 0; i < 100; i++ {
		x := tx(t, key, uint32(i), 50) // all equal-sized
		txs = append(txs, x)
		if err := p.Add(x); err != nil {
			t.Fatal(err)
		}
	}
	one := txs[0].WireSize()
	got := p.Select(3*one + one/2)
	if len(got) != 3 {
		t.Fatalf("selected %d txs, want 3", len(got))
	}
	for i, x := range got {
		if x != txs[i] {
			t.Fatalf("selection %d out of FIFO order", i)
		}
	}
	// A budget below the minimum selects nothing.
	if got := p.Select(one - 1); len(got) != 0 {
		t.Fatalf("selected %d txs under the minimum size", len(got))
	}
}

// TestSelectMinSizeStaysConservative: removing the smallest transaction may
// leave the bound stale low, but never skips a fitting transaction.
func TestSelectMinSizeStaysConservative(t *testing.T) {
	p := New()
	key := testKey(t, 10)
	small := tx(t, key, 0, 0)
	big := tx(t, key, 1, 400)
	if err := p.Add(small); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(big); err != nil {
		t.Fatal(err)
	}
	p.RemoveConfirmed([]*types.Transaction{small})
	got := p.Select(big.WireSize())
	if len(got) != 1 || got[0] != big {
		t.Fatalf("big tx not selected after the smaller one left: %v", got)
	}
}

// TestSelectCompactsDominatedTail: a Select over a pool whose bucket order
// slice is mostly lazy-deleted entries compacts it first.
func TestSelectCompactsDominatedTail(t *testing.T) {
	p := New()
	key := testKey(t, 11)
	var confirmed []*types.Transaction
	for i := 0; i < 300; i++ {
		x := tx(t, key, uint32(i), 10)
		if err := p.Add(x); err != nil {
			t.Fatal(err)
		}
		if i >= 4 {
			confirmed = append(confirmed, x)
		}
	}
	for _, x := range confirmed {
		p.remove(x.ID())
	}
	b := p.buckets[0] // no resolver: everything rates 0
	if len(b.order) <= 2*b.live+16 {
		t.Skip("tail not dominated; threshold changed")
	}
	got := p.Select(1 << 20)
	if len(got) != 4 {
		t.Fatalf("selected %d, want 4", len(got))
	}
	b = p.buckets[0]
	if len(b.order) > 2*b.live+16 {
		t.Fatalf("Select left a dominated tail: %d order entries for %d live", len(b.order), b.live)
	}
}

// TestCompactionReleasesBackingArray: after mass removal the compacted
// bucket must not keep the old oversized backing array (the retention bug:
// reslicing in place left stale trailing entry pointers pinning their
// transactions forever).
func TestCompactionReleasesBackingArray(t *testing.T) {
	p := New()
	key := testKey(t, 14)
	var all []*types.Transaction
	for i := 0; i < 2000; i++ {
		x := tx(t, key, uint32(i), 10)
		all = append(all, x)
		if err := p.Add(x); err != nil {
			t.Fatal(err)
		}
	}
	p.RemoveConfirmed(all[:1990])
	b := p.buckets[0]
	if b.live != 10 {
		t.Fatalf("live = %d, want 10", b.live)
	}
	if cap(b.order) > 4*b.live+16 {
		t.Fatalf("compaction kept an oversized backing array: cap %d for %d live", cap(b.order), b.live)
	}
	for _, e := range b.order[len(b.order):cap(b.order)] {
		if e != nil {
			t.Fatal("stale entry pointer in the vacated tail")
		}
	}
}

// TestFeePrioritySelection: with a resolver wired, higher fee rates
// serialize first, FIFO within a rate.
func TestFeePrioritySelection(t *testing.T) {
	p := New()
	key := testKey(t, 15)
	values := map[types.OutPoint]types.Amount{}
	p.SetFeeResolver(func(op types.OutPoint) (types.Amount, bool) {
		v, ok := values[op]
		return v, ok
	})
	mk := func(idx uint32, fee types.Amount) *types.Transaction {
		x := tx(t, key, idx, 0)
		values[x.Inputs[0].Prev] = x.Outputs[0].Value + fee
		return x
	}
	low1, high, low2 := mk(1, 10), mk(2, 10_000), mk(3, 10)
	for _, x := range []*types.Transaction{low1, high, low2} {
		if err := p.Add(x); err != nil {
			t.Fatal(err)
		}
	}
	got := p.Select(1 << 20)
	if len(got) != 3 || got[0].ID() != high.ID() || got[1].ID() != low1.ID() || got[2].ID() != low2.ID() {
		t.Fatal("selection not fee-rate ordered with FIFO tie-break")
	}
}

// TestBoundedAdmission: a full pool sheds its newest lowest-rate entry for
// a better-paying newcomer and rejects newcomers that do not beat the
// floor — deterministically.
func TestBoundedAdmission(t *testing.T) {
	p := New()
	p.SetLimits(Limits{MaxTxs: 3})
	key := testKey(t, 16)
	values := map[types.OutPoint]types.Amount{}
	p.SetFeeResolver(func(op types.OutPoint) (types.Amount, bool) {
		v, ok := values[op]
		return v, ok
	})
	mk := func(idx uint32, fee types.Amount) *types.Transaction {
		x := tx(t, key, idx, 0)
		values[x.Inputs[0].Prev] = x.Outputs[0].Value + fee
		return x
	}
	a, b, c := mk(1, 100), mk(2, 100), mk(3, 5000)
	for _, x := range []*types.Transaction{a, b, c} {
		if err := p.Add(x); err != nil {
			t.Fatal(err)
		}
	}
	// Same floor rate: rejected, pool unchanged.
	if err := p.Add(mk(4, 100)); !errors.Is(err, ErrPoolFull) {
		t.Fatalf("equal-rate newcomer err = %v, want ErrPoolFull", err)
	}
	// Better rate: evicts the NEWEST lowest-rate entry (b), keeps a.
	d := mk(5, 2000)
	if err := p.Add(d); err != nil {
		t.Fatal(err)
	}
	if p.Contains(b.ID()) || !p.Contains(a.ID()) || !p.Contains(c.ID()) || !p.Contains(d.ID()) {
		t.Fatal("eviction did not shed the newest lowest-rate entry")
	}
	st := p.Stats()
	if st.Evictions != 1 || st.Rejected != 1 || st.Txs != 3 {
		t.Fatalf("stats = %+v", st)
	}
	// Eviction frees the victim's claimed inputs for future spends.
	if err := p.Add(mk(6, 3000)); err != nil {
		t.Fatal(err)
	}
	if p.Contains(a.ID()) {
		t.Fatal("second eviction should have shed the remaining low-rate entry")
	}
}

// TestPoolAllocSteady is the satellite soak: sustained add/confirm churn
// far beyond the pool's standing size must not grow the heap — the
// compaction fix's regression guard.
func TestPoolAllocSteady(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc soak")
	}
	p := New()
	key := testKey(t, 17)
	const window = 512
	var live []*types.Transaction
	churn := func(rounds int) {
		for i := 0; i < rounds; i++ {
			x := txB(t, key, uint32(i), 10)
			if err := p.Add(x); err != nil {
				t.Fatal(err)
			}
			live = append(live, x)
			if len(live) > window {
				p.RemoveConfirmed(live[:64])
				live = append(live[:0:0], live[64:]...)
			}
		}
	}
	churn(2_000) // reach steady state
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	churn(50_000)
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if after.HeapAlloc > before.HeapAlloc+8<<20 {
		t.Fatalf("heap grew %d bytes across steady-state churn", after.HeapAlloc-before.HeapAlloc)
	}
}

// BenchmarkSelectSmallBudgetFullPool measures the early-exit win: a full
// pool, a budget that fits only a few transactions. Before the early exit
// this scanned all N entries per call.
func BenchmarkSelectSmallBudgetFullPool(b *testing.B) {
	p := New()
	key := testKey(b, 12)
	for i := 0; i < 10_000; i++ {
		if err := p.Add(txB(b, key, uint32(i), 300)); err != nil {
			b.Fatal(err)
		}
	}
	budget := 4 * 500 // a handful of ~460-byte transactions
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := p.Select(budget); len(got) == 0 {
			b.Fatal("empty selection")
		}
	}
}

// BenchmarkSelectFullBudgetFullPool is the control: a budget that admits the
// whole pool, where the early exit cannot trigger.
func BenchmarkSelectFullBudgetFullPool(b *testing.B) {
	p := New()
	key := testKey(b, 13)
	for i := 0; i < 10_000; i++ {
		if err := p.Add(txB(b, key, uint32(i), 300)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := p.Select(1 << 30); len(got) != 10_000 {
			b.Fatal("short selection")
		}
	}
}
