package mempool

import (
	"errors"
	"math/rand"
	"testing"

	"bitcoinng/internal/crypto"
	"bitcoinng/internal/types"
)

func testKey(t testing.TB, seed int64) *crypto.PrivateKey {
	t.Helper()
	k, err := crypto.GenerateKey(rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("GenerateKey: %v", err)
	}
	return k
}

func tx(t *testing.T, key *crypto.PrivateKey, prevIdx uint32, pad int) *types.Transaction {
	t.Helper()
	out := &types.Transaction{
		Kind:    types.TxRegular,
		Inputs:  []types.TxInput{{Prev: types.OutPoint{Index: prevIdx}}},
		Outputs: []types.TxOutput{{Value: 1, To: crypto.Address{1}}},
		Padding: make([]byte, pad),
	}
	out.SignInput(0, key)
	return out
}

func TestAddSelectFIFO(t *testing.T) {
	p := New()
	key := testKey(t, 1)
	a, b, c := tx(t, key, 1, 0), tx(t, key, 2, 0), tx(t, key, 3, 0)
	for _, x := range []*types.Transaction{a, b, c} {
		if err := p.Add(x); err != nil {
			t.Fatal(err)
		}
	}
	got := p.Select(1 << 20)
	if len(got) != 3 || got[0].ID() != a.ID() || got[1].ID() != b.ID() || got[2].ID() != c.ID() {
		t.Error("selection not FIFO")
	}
}

func TestAddRejectsDuplicateAndConflict(t *testing.T) {
	p := New()
	key := testKey(t, 2)
	a := tx(t, key, 1, 0)
	if err := p.Add(a); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(a); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate err = %v", err)
	}
	// Different tx spending the same outpoint.
	b := tx(t, key, 1, 4)
	if err := p.Add(b); !errors.Is(err, ErrConflict) {
		t.Errorf("conflict err = %v", err)
	}
	// Coinbase never pools.
	cb := &types.Transaction{Kind: types.TxCoinbase, Outputs: []types.TxOutput{{Value: 1}}}
	if err := p.Add(cb); !errors.Is(err, ErrKind) {
		t.Errorf("coinbase err = %v", err)
	}
}

func TestSelectRespectsSizeBudget(t *testing.T) {
	p := New()
	key := testKey(t, 3)
	a := tx(t, key, 1, 0)
	size := a.WireSize()
	if err := p.Add(a); err != nil {
		t.Fatal(err)
	}
	b := tx(t, key, 2, 0)
	if err := p.Add(b); err != nil {
		t.Fatal(err)
	}
	got := p.Select(size) // room for exactly one
	if len(got) != 1 {
		t.Fatalf("selected %d txs, want 1", len(got))
	}
	if got := p.Select(size - 1); len(got) != 0 {
		t.Errorf("selected %d txs with insufficient budget", len(got))
	}
	if got := p.Select(2 * size); len(got) != 2 {
		t.Errorf("selected %d txs, want 2", len(got))
	}
}

func TestSelectSkipsOversizedButKeepsGoing(t *testing.T) {
	p := New()
	key := testKey(t, 4)
	big := tx(t, key, 1, 5000)
	small := tx(t, key, 2, 0)
	if err := p.Add(big); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(small); err != nil {
		t.Fatal(err)
	}
	got := p.Select(small.WireSize())
	if len(got) != 1 || got[0].ID() != small.ID() {
		t.Error("oversized head blocked selection")
	}
}

func TestRemoveConfirmedEvictsConflicts(t *testing.T) {
	p := New()
	key := testKey(t, 5)
	pooled := tx(t, key, 1, 0)
	if err := p.Add(pooled); err != nil {
		t.Fatal(err)
	}
	// A confirmed tx spending the same outpoint but not identical.
	confirmed := tx(t, key, 1, 8)
	p.RemoveConfirmed([]*types.Transaction{confirmed})
	if p.Contains(pooled.ID()) {
		t.Error("conflicting pooled tx survived confirmation")
	}
	if p.Len() != 0 {
		t.Errorf("pool len = %d", p.Len())
	}
}

func TestReinsertAfterReorg(t *testing.T) {
	p := New()
	key := testKey(t, 6)
	a := tx(t, key, 1, 0)
	if err := p.Add(a); err != nil {
		t.Fatal(err)
	}
	p.RemoveConfirmed([]*types.Transaction{a})
	if p.Len() != 0 {
		t.Fatal("tx not removed")
	}
	// Disconnected block returns its transactions; coinbase is dropped.
	cb := &types.Transaction{Kind: types.TxCoinbase, Outputs: []types.TxOutput{{Value: 1}}, Height: 4}
	p.Reinsert([]*types.Transaction{a, cb})
	if !p.Contains(a.ID()) {
		t.Error("regular tx not reinserted")
	}
	if p.Len() != 1 {
		t.Errorf("pool len = %d, want 1", p.Len())
	}
}

func TestCompactionPreservesOrder(t *testing.T) {
	p := New()
	key := testKey(t, 7)
	var kept []*types.Transaction
	for i := uint32(1); i <= 60; i++ {
		x := tx(t, key, i, 0)
		if err := p.Add(x); err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			kept = append(kept, x)
		}
	}
	// Remove all odd-index txs to trigger compaction.
	var confirmed []*types.Transaction
	for i := uint32(1); i <= 60; i += 2 {
		confirmed = append(confirmed, tx(t, key, i, 0))
	}
	p.RemoveConfirmed(confirmed)
	got := p.Select(1 << 30)
	if len(got) != len(kept) {
		t.Fatalf("select returned %d, want %d", len(got), len(kept))
	}
	for i := range got {
		if got[i].ID() != kept[i].ID() {
			t.Fatalf("order broken at %d after compaction", i)
		}
	}
}
