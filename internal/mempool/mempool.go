// Package mempool holds transactions awaiting serialization into blocks.
//
// Experiments follow the paper's methodology (§7 "No Transaction
// Propagation"): every node's pool is pre-loaded with the same set of
// identical-size artificial transactions before the run, and no
// transactions are relayed while it executes. The pool nevertheless
// implements the full lifecycle a real deployment needs — conflict
// detection, confirmation removal, reorg reinsertion, fee-indexed
// selection, and bounded admission with deterministic eviction — because
// the live TCP node and the sustained-load engine use it too.
package mempool

import (
	"errors"
	"fmt"
	"sort"

	"bitcoinng/internal/crypto"
	"bitcoinng/internal/types"
)

// Pool errors.
var (
	ErrDuplicate = errors.New("mempool: transaction already present")
	ErrConflict  = errors.New("mempool: input already spent by pooled transaction")
	ErrKind      = errors.New("mempool: only regular transactions are pooled")
	ErrPoolFull  = errors.New("mempool: pool full and fee rate below everything pooled")
)

// FeeResolver reports the value of a spent output, when known. The node
// wires it to its UTXO view; the pool additionally resolves parents pooled
// ahead of their children (chained streams), so most fees are exact. A
// transaction with any unresolvable input gets fee 0 — it still pools, at
// the lowest priority.
type FeeResolver func(types.OutPoint) (types.Amount, bool)

// Limits bounds the pool; zero fields are unlimited.
type Limits struct {
	MaxTxs   int
	MaxBytes int
}

// Stats is a point-in-time pool summary.
type Stats struct {
	Txs       int
	Bytes     int
	Evictions uint64 // transactions shed by bounded admission so far
	Rejected  uint64 // additions refused with ErrPoolFull so far
}

// entry is one pooled transaction with its selection metadata.
type entry struct {
	tx   *types.Transaction
	size int
	rate int64 // fee per 1000 bytes; 0 when the fee could not be resolved
	bkt  *bucket
	pos  int // index in bkt.order (maintained by compaction)
}

// bucket is the FIFO of one fee rate. Removed entries are nil'd in place
// and compacted once they dominate.
type bucket struct {
	rate  int64
	order []*entry
	live  int
}

// Pool is a fee-indexed transaction pool: selection takes buckets in
// descending fee-rate order, FIFO within a bucket, so equal-fee workloads
// (and pools without a fee resolver, where every rate is 0) retain the
// classic arrival-order policy. It is not safe for concurrent use; each
// node owns one and drives it from its event loop.
type Pool struct {
	txs     map[crypto.Hash]*entry
	spends  map[types.OutPoint]crypto.Hash // claimed inputs -> claiming tx
	buckets map[int64]*bucket
	rates   []int64 // bucket keys, sorted descending; never map order

	bytes    int
	limits   Limits
	resolver FeeResolver

	evictions uint64
	rejected  uint64

	// minSize is a lower bound on the wire size of any pooled transaction
	// (0 = empty/unknown). Select stops scanning once its remaining budget
	// drops below it: nothing further can fit. The bound may go stale low
	// when the smallest transaction is removed — that only delays the
	// early exit, never skips a fitting transaction — and compact
	// re-tightens it.
	minSize int
}

// New returns an empty, unbounded pool with no fee resolver (pure FIFO).
func New() *Pool {
	return &Pool{
		txs:     make(map[crypto.Hash]*entry),
		spends:  make(map[types.OutPoint]crypto.Hash),
		buckets: make(map[int64]*bucket),
	}
}

// SetLimits bounds the pool. Admission over the bound sheds the newest
// entry of the lowest-rate bucket (deterministic), or rejects the newcomer
// with ErrPoolFull when its own rate does not beat the floor.
func (p *Pool) SetLimits(l Limits) { p.limits = l }

// SetFeeResolver wires previous-output lookup for fee-rate indexing.
func (p *Pool) SetFeeResolver(r FeeResolver) { p.resolver = r }

// Stats returns a point-in-time summary.
func (p *Pool) Stats() Stats {
	return Stats{Txs: len(p.txs), Bytes: p.bytes, Evictions: p.evictions, Rejected: p.rejected}
}

// Len returns the number of pooled transactions.
func (p *Pool) Len() int { return len(p.txs) }

// Contains reports whether the pool holds txid.
func (p *Pool) Contains(txid crypto.Hash) bool {
	_, ok := p.txs[txid]
	return ok
}

// feeRate resolves tx's fee and converts it to a per-1000-byte rate.
// Inputs resolve against the node's UTXO view first, then against pooled
// parents; any unresolved input zeroes the fee.
func (p *Pool) feeRate(tx *types.Transaction, size int) int64 {
	if p.resolver == nil || size <= 0 {
		return 0
	}
	var in types.Amount
	for i := range tx.Inputs {
		prev := tx.Inputs[i].Prev
		v, ok := p.resolver(prev)
		if !ok {
			if parent, pooled := p.txs[prev.TxID]; pooled && int(prev.Index) < len(parent.tx.Outputs) {
				v, ok = parent.tx.Outputs[prev.Index].Value, true
			}
		}
		if !ok {
			return 0
		}
		in += v
	}
	var out types.Amount
	for i := range tx.Outputs {
		out += tx.Outputs[i].Value
	}
	fee := in - out
	if fee <= 0 {
		return 0
	}
	return int64(fee) * 1000 / int64(size)
}

// bucketFor returns (creating if needed) the bucket of one rate, keeping
// the descending rate index sorted.
func (p *Pool) bucketFor(rate int64) *bucket {
	if b, ok := p.buckets[rate]; ok {
		return b
	}
	b := &bucket{rate: rate}
	p.buckets[rate] = b
	i := sort.Search(len(p.rates), func(i int) bool { return p.rates[i] <= rate })
	p.rates = append(p.rates, 0)
	copy(p.rates[i+1:], p.rates[i:])
	p.rates[i] = rate
	return b
}

// dropBucket removes an emptied bucket from the rate index.
func (p *Pool) dropBucket(b *bucket) {
	delete(p.buckets, b.rate)
	for i, r := range p.rates {
		if r == b.rate {
			p.rates = append(p.rates[:i], p.rates[i+1:]...)
			return
		}
	}
}

// Add inserts a well-formed regular transaction, rejecting duplicates and
// transactions that double-spend an input already claimed in the pool.
// Validation against the UTXO set is the block assembler's job (a pooled
// transaction can become invalid later through a conflicting confirmation).
// When limits are set, admission may evict lower-priority entries or return
// ErrPoolFull.
func (p *Pool) Add(tx *types.Transaction) error {
	if tx.Kind != types.TxRegular {
		return fmt.Errorf("%w: got %v", ErrKind, tx.Kind)
	}
	txid := tx.ID()
	if _, ok := p.txs[txid]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicate, txid.Short())
	}
	for i := range tx.Inputs {
		if owner, ok := p.spends[tx.Inputs[i].Prev]; ok {
			return fmt.Errorf("%w: %v held by %s", ErrConflict, tx.Inputs[i].Prev, owner.Short())
		}
	}
	size := tx.WireSize()
	rate := p.feeRate(tx, size)
	if err := p.makeRoom(size, rate); err != nil {
		p.rejected++
		return err
	}
	b := p.bucketFor(rate)
	e := &entry{tx: tx, size: size, rate: rate, bkt: b, pos: len(b.order)}
	b.order = append(b.order, e)
	b.live++
	p.txs[txid] = e
	p.bytes += size
	for i := range tx.Inputs {
		p.spends[tx.Inputs[i].Prev] = txid
	}
	if p.minSize == 0 || size < p.minSize {
		p.minSize = size
	}
	return nil
}

// makeRoom enforces the limits for an incoming (size, rate): it evicts the
// newest entry of the lowest-rate bucket while the newcomer strictly beats
// that floor, and rejects with ErrPoolFull otherwise. Shedding newest-first
// keeps the oldest (longest-waiting) transactions confirmable and makes
// overload behaviour independent of map iteration.
func (p *Pool) makeRoom(size int, rate int64) error {
	if p.limits.MaxTxs <= 0 && p.limits.MaxBytes <= 0 {
		return nil
	}
	over := func() bool {
		if p.limits.MaxTxs > 0 && len(p.txs)+1 > p.limits.MaxTxs {
			return true
		}
		return p.limits.MaxBytes > 0 && p.bytes+size > p.limits.MaxBytes
	}
	for over() {
		victim := p.newestLowest()
		if victim == nil || victim.rate >= rate {
			return fmt.Errorf("%w: rate %d", ErrPoolFull, rate)
		}
		p.removeEntry(victim)
		p.evictions++
	}
	return nil
}

// newestLowest returns the most recent entry of the lowest-rate bucket.
func (p *Pool) newestLowest() *entry {
	for i := len(p.rates) - 1; i >= 0; i-- {
		b := p.buckets[p.rates[i]]
		for j := len(b.order) - 1; j >= 0; j-- {
			if b.order[j] != nil {
				return b.order[j]
			}
		}
	}
	return nil
}

// Select returns pooled transactions in descending fee-rate order (FIFO
// within a rate) whose serialized sizes fit within maxBytes, skipping (not
// evicting) transactions that do not fit. With no fee resolver every rate
// is 0 and this is the classic deterministic FIFO block-filling policy.
//
// Two fast paths keep a busy node's per-block cost proportional to what it
// selects rather than to pool history: the scan stops once the remaining
// budget cannot fit even the smallest pooled transaction, and a lazy-deleted
// tail that has come to dominate a bucket triggers compaction before the
// scan instead of waiting for the next RemoveConfirmed.
func (p *Pool) Select(maxBytes int) []*types.Transaction {
	p.compact(false)
	var out []*types.Transaction
	remaining := maxBytes
scan:
	for _, r := range p.rates {
		b := p.buckets[r]
		for _, e := range b.order {
			if remaining < p.minSize {
				break scan // nothing pooled is small enough to fit
			}
			if e == nil {
				continue // lazily skip removed entries
			}
			if e.size > remaining {
				continue
			}
			out = append(out, e.tx)
			remaining -= e.size
		}
	}
	return out
}

// RemoveConfirmed drops the given transactions (typically the contents of a
// newly connected block) and any pooled transaction that conflicts with
// them on an input.
func (p *Pool) RemoveConfirmed(txs []*types.Transaction) {
	for _, tx := range txs {
		p.remove(tx.ID())
		// Evict pool entries that spend the same inputs.
		for i := range tx.Inputs {
			if owner, ok := p.spends[tx.Inputs[i].Prev]; ok {
				p.remove(owner)
			}
		}
	}
	p.compact(false)
}

// Reinsert returns transactions to the pool after the block containing them
// was disconnected in a reorganization. Conflicting entries that arrived in
// the meantime win; reinsertion is best-effort, as in Bitcoin.
func (p *Pool) Reinsert(txs []*types.Transaction) {
	for _, tx := range txs {
		if tx.Kind != types.TxRegular {
			continue // coinbases and poisons die with their block
		}
		_ = p.Add(tx)
	}
}

func (p *Pool) remove(txid crypto.Hash) {
	e, ok := p.txs[txid]
	if !ok {
		return
	}
	p.removeEntry(e)
}

func (p *Pool) removeEntry(e *entry) {
	txid := e.tx.ID()
	delete(p.txs, txid)
	for i := range e.tx.Inputs {
		if p.spends[e.tx.Inputs[i].Prev] == txid {
			delete(p.spends, e.tx.Inputs[i].Prev)
		}
	}
	p.bytes -= e.size
	// Clear the slot immediately: a removed entry (and the transaction it
	// pins) must not stay reachable from the bucket's backing array while
	// waiting for compaction — the retention bug sustained churn exposed.
	e.bkt.order[e.pos] = nil
	e.bkt.live--
	e.bkt = nil
	if len(p.txs) == 0 {
		p.minSize = 0
	}
}

// compact rebuilds buckets whose order slices are dominated by removed
// slots (always, when force is set), drops emptied buckets, re-tightens
// the minSize bound, and — unlike the historical version, which resliced
// in place and left the oversized backing array (with stale trailing
// slots) pinned forever — reallocates once live entries occupy less than a
// quarter of the capacity, so a pool that churned millions of transactions
// shrinks back to its working set.
func (p *Pool) compact(force bool) {
	compacted := false
	for i := 0; i < len(p.rates); {
		b := p.buckets[p.rates[i]]
		if b.live == 0 {
			p.dropBucket(b) // removes rates[i]; do not advance
			continue
		}
		if force || len(b.order) >= 2*b.live+16 {
			compacted = true
			inPlace := cap(b.order) <= 4*b.live+16
			dst := make([]*entry, 0, b.live)
			if inPlace {
				dst = b.order[:0]
			}
			for _, e := range b.order {
				if e == nil {
					continue
				}
				e.pos = len(dst)
				dst = append(dst, e)
			}
			if inPlace {
				// Clear the vacated trailing slots so the tail stops
				// pinning moved-from entry pointers (and the transactions
				// they hold) until the next growth overwrites them.
				tail := dst[len(dst):cap(dst)]
				for j := range tail {
					tail[j] = nil
				}
			}
			b.order = dst
		}
		i++
	}
	if compacted {
		// Re-tighten the minSize bound (removals can leave it stale low);
		// O(live), amortized by the compaction trigger.
		min := 0
		for _, r := range p.rates {
			for _, e := range p.buckets[r].order {
				if e != nil && (min == 0 || e.size < min) {
					min = e.size
				}
			}
		}
		p.minSize = min
	}
	if len(p.txs) == 0 {
		p.minSize = 0
	}
}
