// Package mempool holds transactions awaiting serialization into blocks.
//
// Experiments follow the paper's methodology (§7 "No Transaction
// Propagation"): every node's pool is pre-loaded with the same set of
// identical-size, independent artificial transactions before the run, and
// no transactions are relayed while it executes. The pool nevertheless
// implements the full lifecycle a real deployment needs — conflict
// detection, confirmation removal, and reorg reinsertion — because the live
// TCP node uses it too.
package mempool

import (
	"errors"
	"fmt"

	"bitcoinng/internal/crypto"
	"bitcoinng/internal/types"
)

// Pool errors.
var (
	ErrDuplicate = errors.New("mempool: transaction already present")
	ErrConflict  = errors.New("mempool: input already spent by pooled transaction")
	ErrKind      = errors.New("mempool: only regular transactions are pooled")
)

// Pool is a FIFO transaction pool. It is not safe for concurrent use; each
// node owns one and drives it from its event loop.
type Pool struct {
	txs    map[crypto.Hash]*types.Transaction
	order  []crypto.Hash                  // arrival order; selection is FIFO
	spends map[types.OutPoint]crypto.Hash // claimed inputs -> claiming tx
	// minSize is a lower bound on the wire size of any pooled transaction
	// (0 = empty/unknown). Select stops scanning once its remaining budget
	// drops below it: nothing further can fit. The bound may go stale low
	// when the smallest transaction is removed — that only delays the early
	// exit, never skips a fitting transaction — and compact re-tightens it.
	minSize int
}

// New returns an empty pool.
func New() *Pool {
	return &Pool{
		txs:    make(map[crypto.Hash]*types.Transaction),
		spends: make(map[types.OutPoint]crypto.Hash),
	}
}

// Len returns the number of pooled transactions.
func (p *Pool) Len() int { return len(p.txs) }

// Contains reports whether the pool holds txid.
func (p *Pool) Contains(txid crypto.Hash) bool {
	_, ok := p.txs[txid]
	return ok
}

// Add inserts a well-formed regular transaction, rejecting duplicates and
// transactions that double-spend an input already claimed in the pool.
// Validation against the UTXO set is the block assembler's job (a pooled
// transaction can become invalid later through a conflicting confirmation).
func (p *Pool) Add(tx *types.Transaction) error {
	if tx.Kind != types.TxRegular {
		return fmt.Errorf("%w: got %v", ErrKind, tx.Kind)
	}
	txid := tx.ID()
	if _, ok := p.txs[txid]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicate, txid.Short())
	}
	for i := range tx.Inputs {
		if owner, ok := p.spends[tx.Inputs[i].Prev]; ok {
			return fmt.Errorf("%w: %v held by %s", ErrConflict, tx.Inputs[i].Prev, owner.Short())
		}
	}
	p.txs[txid] = tx
	p.order = append(p.order, txid)
	for i := range tx.Inputs {
		p.spends[tx.Inputs[i].Prev] = txid
	}
	if size := tx.WireSize(); p.minSize == 0 || size < p.minSize {
		p.minSize = size
	}
	return nil
}

// Select returns pooled transactions in arrival order whose serialized
// sizes fit within maxBytes, skipping (not evicting) transactions that do
// not fit. This is the deterministic block-filling policy every node in an
// experiment shares.
//
// Two fast paths keep a busy node's per-block cost proportional to what it
// selects rather than to pool history: the scan stops once the remaining
// budget cannot fit even the smallest pooled transaction, and a lazy-deleted
// tail that has come to dominate the order slice triggers compaction before
// the scan instead of waiting for the next RemoveConfirmed.
func (p *Pool) Select(maxBytes int) []*types.Transaction {
	p.compact()
	var out []*types.Transaction
	remaining := maxBytes
	for _, txid := range p.order {
		if remaining < p.minSize {
			break // nothing pooled is small enough to fit
		}
		tx, ok := p.txs[txid]
		if !ok {
			continue // lazily skip removed entries
		}
		size := tx.WireSize()
		if size > remaining {
			continue
		}
		out = append(out, tx)
		remaining -= size
	}
	return out
}

// RemoveConfirmed drops the given transactions (typically the contents of a
// newly connected block) and any pooled transaction that conflicts with
// them on an input.
func (p *Pool) RemoveConfirmed(txs []*types.Transaction) {
	for _, tx := range txs {
		p.remove(tx.ID())
		// Evict pool entries that spend the same inputs.
		for i := range tx.Inputs {
			if owner, ok := p.spends[tx.Inputs[i].Prev]; ok {
				p.remove(owner)
			}
		}
	}
	p.compact()
}

// Reinsert returns transactions to the pool after the block containing them
// was disconnected in a reorganization. Conflicting entries that arrived in
// the meantime win; reinsertion is best-effort, as in Bitcoin.
func (p *Pool) Reinsert(txs []*types.Transaction) {
	for _, tx := range txs {
		if tx.Kind != types.TxRegular {
			continue // coinbases and poisons die with their block
		}
		_ = p.Add(tx)
	}
}

func (p *Pool) remove(txid crypto.Hash) {
	tx, ok := p.txs[txid]
	if !ok {
		return
	}
	delete(p.txs, txid)
	for i := range tx.Inputs {
		if p.spends[tx.Inputs[i].Prev] == txid {
			delete(p.spends, tx.Inputs[i].Prev)
		}
	}
}

// compact rebuilds the order slice once enough removed entries accumulate,
// keeping Select linear in live entries, and re-tightens the minSize bound
// (removals can leave it stale low).
func (p *Pool) compact() {
	if len(p.order) < 2*len(p.txs)+16 {
		if len(p.txs) == 0 {
			p.minSize = 0
		}
		return
	}
	live := p.order[:0]
	min := 0
	for _, txid := range p.order {
		tx, ok := p.txs[txid]
		if !ok {
			continue
		}
		live = append(live, txid)
		if size := tx.WireSize(); min == 0 || size < min {
			min = size
		}
	}
	p.order = live
	p.minSize = min
}
