// Package load is the sustained-load engine: a streaming, lane-chained
// transaction generator whose content is a pure function of its seed, plus
// the rate-controlled blaster that injects it and the reporting that turns a
// finished chain into offered-vs-confirmed throughput and latency figures.
//
// The paper's methodology pre-loads every mempool with one finite workload
// (§7 "No Transaction Propagation"), which caps offered load by setup time
// and RAM. Stream removes the cap: transactions are signed in bounded
// batches on the shared validate.Pool while the run executes, and slots
// below the confirmation floor are released, so resident memory tracks the
// in-flight window rather than the run's total offered load.
package load

import (
	"encoding/binary"
	"fmt"
	"sync"

	"bitcoinng/internal/crypto"
	"bitcoinng/internal/sim"
	"bitcoinng/internal/types"
	"bitcoinng/internal/validate"
)

// DefaultLanes is the default chain-parallelism of a stream: how many
// independent spend chains interleave. One batch signs one transaction per
// lane, so lanes also bound the signing batch size.
const DefaultLanes = 256

// StreamFee is the fee every stream transaction pays; it funds the 40/60
// split path exactly like the classic workload's fee.
const StreamFee = types.Amount(100)

// laneFund is each lane's genesis endowment. At StreamFee per hop a lane
// sustains ~10^10 transactions before exhaustion, and DefaultLanes lanes
// total ~2.8e14 — comfortably under types.MaxAmount.
const laneFund = types.Amount(1) << 40

// keyStream is the sim.NewRand stream id the signing key derives from
// (shared with the classic experiment workload for seed continuity).
const keyStream = 0xf00d

// indexMagic prefixes the index stamp in a stream transaction's padding.
// The spend chain forces every output back to the stream key, so the
// transaction's position cannot ride in the output address; it rides in the
// first indexStampLen padding bytes instead, where consensus ignores it.
var indexMagic = [4]byte{'N', 'G', 'L', 'D'}

const indexStampLen = len(indexMagic) + 8

// StreamConfig parameterizes a Stream. Zero values take defaults.
type StreamConfig struct {
	// Seed derives the signing key and thereby every transaction ID.
	Seed int64
	// TxSize pads each transaction to this serialized size (default 476,
	// the paper's operational average).
	TxSize int
	// Lanes is the number of interleaved spend chains (default
	// DefaultLanes, clamped to MaxTxs when that is smaller).
	Lanes int
	// MaxTxs caps the stream; 0 means unbounded (the lane endowment still
	// imposes an astronomically distant ceiling).
	MaxTxs int64
}

// Stream generates an unbounded, seed-deterministic sequence of chained
// transactions: transaction i spends the output of transaction i-Lanes
// (its lane predecessor), paying the stream key back minus StreamFee. Batch
// content is a pure function of (seed, batch number), so concurrent callers
// on different shards materialize identical objects in any order — the
// byte-identical-at-any-parallelism property the determinism gate enforces.
//
// Stream is safe for concurrent use.
type Stream struct {
	cfg  StreamConfig
	key  *crypto.PrivateKey
	addr crypto.Address
	pool *validate.Pool

	mu        sync.Mutex
	bound     bool
	base      int64 // first retained index (release floor, lane-aligned)
	window    []*types.Transaction
	generated int64 // first never-generated index
	heads     []types.OutPoint // per-lane unspent tip
	headVal   []types.Amount
}

// NewStream derives the stream key and prepares an empty (unbound) stream.
func NewStream(cfg StreamConfig) (*Stream, error) {
	if cfg.TxSize <= 0 {
		cfg.TxSize = 476
	}
	if cfg.Lanes <= 0 {
		cfg.Lanes = DefaultLanes
	}
	if cfg.MaxTxs > 0 && int64(cfg.Lanes) > cfg.MaxTxs {
		cfg.Lanes = int(cfg.MaxTxs)
	}
	// The endowment ceiling keeps the generator from ever producing a
	// zero-value output; at default economics it is ~10^12 transactions.
	fund := int64(laneFund-1) / int64(StreamFee) * int64(cfg.Lanes)
	if cfg.MaxTxs <= 0 || cfg.MaxTxs > fund {
		cfg.MaxTxs = fund
	}
	key, err := crypto.GenerateKey(sim.NewRand(cfg.Seed, keyStream))
	if err != nil {
		return nil, fmt.Errorf("load: stream key: %w", err)
	}
	return &Stream{
		cfg:  cfg,
		key:  key,
		addr: key.Public().Addr(),
		pool: validate.SharedPool(),
	}, nil
}

// GenesisPayouts returns the lane endowments to append to a genesis block's
// coinbase: one laneFund output per lane, owned by the stream key.
func (s *Stream) GenesisPayouts() []types.TxOutput {
	out := make([]types.TxOutput, s.cfg.Lanes)
	for i := range out {
		out[i] = types.TxOutput{Value: laneFund, To: s.addr}
	}
	return out
}

// Bind anchors the lanes to the funding coinbase: lane l spends output
// firstOutput+l of transaction cb. It must be called exactly once, before
// any Tx call.
func (s *Stream) Bind(cb crypto.Hash, firstOutput uint32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.bound {
		panic("load: stream bound twice")
	}
	s.bound = true
	s.heads = make([]types.OutPoint, s.cfg.Lanes)
	s.headVal = make([]types.Amount, s.cfg.Lanes)
	for l := range s.heads {
		s.heads[l] = types.OutPoint{TxID: cb, Index: firstOutput + uint32(l)}
		s.headVal[l] = laneFund
	}
}

// Lanes returns the stream's lane count.
func (s *Stream) Lanes() int { return s.cfg.Lanes }

// MaxTxs returns the stream's effective cap (never zero; unbounded streams
// report the lane-endowment ceiling).
func (s *Stream) MaxTxs() int64 { return s.cfg.MaxTxs }

// Generated returns the first never-generated index: how far the signing
// lookahead has materialized.
func (s *Stream) Generated() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.generated
}

// Released returns the release floor: indices below it have been freed and
// are no longer materialized.
func (s *Stream) Released() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.base
}

// Occupancy returns how many transactions are currently materialized (the
// signing lookahead's resident set).
func (s *Stream) Occupancy() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.generated - s.base
}

// Tx returns transaction i, generating (and signing, on the shared
// validate.Pool) every batch up to i's on demand. It returns nil for
// indices at or beyond the cap and for indices already released.
//
// Generation uses compare-and-install: the batch is built and signed
// OUTSIDE the stream lock (a pure function of the batch number and the lane
// heads it starts from), then installed only if no concurrent caller got
// there first. Duplicate work between racing shards is possible and
// harmless; the installed content never depends on the race.
func (s *Stream) Tx(i int64) *types.Transaction {
	if i < 0 || i >= s.cfg.MaxTxs {
		return nil
	}
	s.mu.Lock()
	if !s.bound {
		s.mu.Unlock()
		panic("load: stream not bound")
	}
	for s.generated <= i {
		g := s.generated
		heads := append([]types.OutPoint(nil), s.heads...)
		vals := append([]types.Amount(nil), s.headVal...)
		s.mu.Unlock()
		batch, nh, nv := s.buildBatch(g, heads, vals)
		s.mu.Lock()
		if s.generated == g {
			s.window = append(s.window, batch...)
			s.generated += int64(len(batch))
			s.heads, s.headVal = nh, nv
		}
	}
	var tx *types.Transaction
	if i >= s.base {
		tx = s.window[i-s.base]
	}
	s.mu.Unlock()
	return tx
}

// buildBatch constructs and signs the batch starting at index g from the
// given lane heads. Pure: no Stream state is read or written, so it runs
// without the lock and its output depends only on (g, heads, vals).
func (s *Stream) buildBatch(g int64, heads []types.OutPoint, vals []types.Amount) ([]*types.Transaction, []types.OutPoint, []types.Amount) {
	n := int64(len(heads))
	if g+n > s.cfg.MaxTxs {
		n = s.cfg.MaxTxs - g
	}
	batch := make([]*types.Transaction, n)
	for j := range batch {
		tx := &types.Transaction{
			Kind:   types.TxRegular,
			Inputs: []types.TxInput{{Prev: heads[j]}},
			Outputs: []types.TxOutput{{
				Value: vals[j] - StreamFee,
				To:    s.addr,
			}},
		}
		PadTo(tx, s.cfg.TxSize)
		stampIndex(tx, g+int64(j))
		batch[j] = tx
	}
	s.pool.Run(len(batch), func(j int) { batch[j].SignInput(0, s.key) })
	s.pool.WarmTransactions(batch)
	nh := append([]types.OutPoint(nil), heads...)
	nv := append([]types.Amount(nil), vals...)
	for j := range batch {
		nh[j] = types.OutPoint{TxID: batch[j].ID(), Index: 0}
		nv[j] = vals[j] - StreamFee
	}
	return batch, nh, nv
}

// Release frees every transaction below `before` (rounded down to a batch
// boundary and clamped to the generated frontier). Released slots are
// cleared before the window reslices, so the backing array stops pinning
// the freed transactions — the retention class the mempool compaction fix
// also addresses.
func (s *Stream) Release(before int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if before > s.generated {
		before = s.generated
	}
	before -= before % int64(s.cfg.Lanes)
	if before <= s.base {
		return
	}
	drop := before - s.base
	for i := int64(0); i < drop; i++ {
		s.window[i] = nil
	}
	s.window = s.window[drop:]
	s.base = before
	// Re-home the live suffix once the dead prefix of the backing array
	// dominates, so long runs do not accumulate slid-forward arrays.
	if cap(s.window) > 4*len(s.window)+64 {
		s.window = append(make([]*types.Transaction, 0, len(s.window)), s.window...)
	}
}

// stampIndex writes the stream index into the transaction's padding. Called
// after PadTo and before SignInput, so the stamp is covered by the
// signature and the ID like any other byte.
func stampIndex(tx *types.Transaction, i int64) {
	if len(tx.Padding) < indexStampLen {
		return // tiny TxSize: the tx still validates, it just loses tracking
	}
	copy(tx.Padding, indexMagic[:])
	binary.BigEndian.PutUint64(tx.Padding[len(indexMagic):], uint64(i))
	tx.Invalidate()
}

// TxIndex decodes the stream index stamped into a transaction's padding,
// reporting ok=false for transactions that are not stream members.
func TxIndex(tx *types.Transaction) (int64, bool) {
	if tx.Kind != types.TxRegular || len(tx.Padding) < indexStampLen {
		return 0, false
	}
	for k, b := range indexMagic {
		if tx.Padding[k] != b {
			return 0, false
		}
	}
	return int64(binary.BigEndian.Uint64(tx.Padding[len(indexMagic):])), true
}

// PadTo sets tx.Padding so the serialized size hits target exactly where
// possible (off by at most the padding varint's growth otherwise).
// Transactions whose base size already exceeds target are left unpadded.
func PadTo(tx *types.Transaction, target int) {
	tx.Padding = nil
	tx.Invalidate()
	base := tx.WireSize() // includes the 1-byte varint of empty padding
	want := target - base // extra bytes needed
	if want <= 0 {
		return
	}
	// n padding bytes cost n + (varintLen(n) - 1) extra. Start from the
	// closed-form guess and correct for varint boundaries.
	n := want
	if want > 0xfc {
		n = want - 2 // 3-byte varint
		if n > 0xffff {
			n = want - 4 // 5-byte varint
		}
	}
	for n > 0 && n+varintLen(n)-1 > want {
		n--
	}
	tx.Padding = make([]byte, n)
	tx.Invalidate()
}

func varintLen(n int) int {
	switch {
	case n < 0xfd:
		return 1
	case n <= 0xffff:
		return 3
	case n <= 0xffffffff:
		return 5
	default:
		return 9
	}
}
