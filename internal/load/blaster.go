package load

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"bitcoinng/internal/chain"
	"bitcoinng/internal/types"
)

// Mode names a blaster's pacing discipline.
type Mode string

const (
	// Open offers transactions at a fixed rate regardless of confirmation
	// progress — the discipline that finds the saturation knee.
	Open Mode = "open"
	// Closed keeps a fixed window of unconfirmed transactions outstanding —
	// the discipline that measures the system's self-paced ceiling.
	Closed Mode = "closed"
)

// OfferedAt returns how many transactions an open-loop driver at rate tx/s
// has offered by virtual time now (nanoseconds): floor(rate * t).
func OfferedAt(rate float64, now int64) int64 {
	if rate <= 0 || now <= 0 {
		return 0
	}
	return int64(rate * (float64(now) / float64(time.Second)))
}

// OfferTime returns the virtual time (nanoseconds) at which an open-loop
// driver at rate tx/s offers transaction i — the inverse of OfferedAt.
func OfferTime(rate float64, i int64) int64 {
	if rate <= 0 {
		return 0
	}
	return int64(math.Ceil(float64(i+1) / rate * float64(time.Second)))
}

// BlasterConfig parameterizes a Blaster.
type BlasterConfig struct {
	// Mode defaults to Open when Rate > 0, Closed otherwise.
	Mode Mode
	// Rate is the open-loop offered rate in tx/s.
	Rate float64
	// Window is the closed-loop outstanding-transaction target.
	Window int64
}

// Blaster is a rate-controlled injector over a Stream: each Tick it submits
// every transaction the pacing discipline says is due by the current
// virtual time. It records actual injection times, so latency percentiles
// measure from the moment a transaction entered the system.
//
// Blaster is driven from a single goroutine (the harness loop between run
// slices); it is not safe for concurrent use.
type Blaster struct {
	cfg    BlasterConfig
	stream *Stream

	injected   int64
	rejected   int64
	offerBase  int64
	offerTimes []int64 // virtual inject time per index, from offerBase
}

// NewBlaster wires a blaster over stream.
func NewBlaster(stream *Stream, cfg BlasterConfig) *Blaster {
	if cfg.Mode == "" {
		if cfg.Rate > 0 {
			cfg.Mode = Open
		} else {
			cfg.Mode = Closed
		}
	}
	if cfg.Mode == Closed && cfg.Window <= 0 {
		cfg.Window = 1024
	}
	return &Blaster{cfg: cfg, stream: stream}
}

// Injected returns how many transactions have been submitted so far.
func (b *Blaster) Injected() int64 { return b.injected }

// Rejected returns how many submissions every target refused (pool full or
// conflicting) — offered load the system shed at admission.
func (b *Blaster) Rejected() int64 { return b.rejected }

// Tick submits every transaction due by virtual time now. For open loop the
// frontier is OfferedAt(rate, now); for closed loop it is confirmed+Window.
// submit delivers one transaction and reports whether any target admitted
// it; rejected transactions still count as injected (the load was offered).
func (b *Blaster) Tick(now int64, confirmed int64, submit func(*types.Transaction) bool) {
	var frontier int64
	switch b.cfg.Mode {
	case Open:
		frontier = OfferedAt(b.cfg.Rate, now)
	case Closed:
		frontier = confirmed + b.cfg.Window
	}
	for b.injected < frontier {
		tx := b.stream.Tx(b.injected)
		if tx == nil {
			return // stream cap reached
		}
		if !submit(tx) {
			b.rejected++
		}
		b.offerTimes = append(b.offerTimes, now)
		b.injected++
	}
}

// ReleaseBehind frees stream slots more than slack behind the confirmation
// floor and drops the matching offer-time prefix.
func (b *Blaster) ReleaseBehind(floor, slack int64) {
	b.stream.Release(floor - slack)
	base := b.stream.Released()
	if drop := base - b.offerBase; drop > 0 && drop <= int64(len(b.offerTimes)) {
		b.offerTimes = append(b.offerTimes[:0:0], b.offerTimes[drop:]...)
		b.offerBase = base
	}
}

// offerTimeOf returns the recorded injection time of index i, if retained.
func (b *Blaster) offerTimeOf(i int64) (int64, bool) {
	j := i - b.offerBase
	if j < 0 || j >= int64(len(b.offerTimes)) {
		return 0, false
	}
	return b.offerTimes[j], true
}

// Report summarizes the blast against the final confirmations.
func (b *Blaster) Report(duration time.Duration, confs []Confirmation) *Report {
	offered := b.injected
	if b.cfg.Mode == Open {
		if due := OfferedAt(b.cfg.Rate, int64(duration)); due > offered {
			offered = due
		}
	}
	return buildReport(b.cfg.Mode, b.cfg.Rate, b.cfg.Window, duration,
		offered, b.injected, confs, b.offerTimeOf)
}

// Confirmation is one stream transaction observed on a final main chain.
type Confirmation struct {
	Index int64
	Time  int64 // confirming block's header timestamp, virtual nanos
}

// Confirmations walks a final main chain tip-to-genesis and collects every
// stream transaction with the block timestamp that serialized it. The walk
// reads only committed chain structure, so it is engine-independent and
// byte-identical at any parallelism.
func Confirmations(tip *chain.Node) []Confirmation {
	var out []Confirmation
	for n := tip; n != nil; n = n.Parent {
		t := n.Block().Time()
		for _, tx := range n.Block().Transactions() {
			if idx, ok := TxIndex(tx); ok {
				out = append(out, Confirmation{Index: idx, Time: t})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// Report is one sustained-load measurement.
type Report struct {
	Mode   Mode
	Rate   float64 // open-loop offered rate (tx/s); 0 for closed loop
	Window int64   // closed-loop outstanding target; 0 for open loop

	Duration  time.Duration // measured virtual interval
	Offered   int64         // transactions the discipline called due
	Admitted  int64         // transactions actually submitted/materialized
	Confirmed int64         // stream transactions on the reference main chain

	// Confirmation-latency percentiles (offer to serializing block
	// timestamp); zero when nothing confirmed.
	P50, P90, P99 time.Duration
}

// ConfirmedPerSec is the measured goodput.
func (r *Report) ConfirmedPerSec() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Confirmed) / r.Duration.Seconds()
}

// OfferedPerSec is the offered load over the measured interval.
func (r *Report) OfferedPerSec() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Offered) / r.Duration.Seconds()
}

// Fprint renders the report; everything printed is a deterministic function
// of the simulation, so CI can diff it byte for byte.
func (r *Report) Fprint(w io.Writer) {
	fmt.Fprintf(w, "load: mode=%s", r.Mode)
	if r.Mode == Open {
		fmt.Fprintf(w, " rate=%.2f/s", r.Rate)
	} else {
		fmt.Fprintf(w, " window=%d", r.Window)
	}
	fmt.Fprintf(w, " dur=%v offered=%d admitted=%d confirmed=%d (%.2f tx/s)\n",
		r.Duration, r.Offered, r.Admitted, r.Confirmed, r.ConfirmedPerSec())
	if r.Confirmed > 0 {
		fmt.Fprintf(w, "load: latency p50=%v p90=%v p99=%v\n", r.P50, r.P90, r.P99)
	}
}

// BuildReport summarizes a run whose offer times follow the analytic
// open-loop schedule (the in-sim experiment path, where views release
// transactions by the virtual clock rather than via a Blaster).
func BuildReport(mode Mode, rate float64, window int64, duration time.Duration,
	offered, admitted int64, confs []Confirmation) *Report {
	return buildReport(mode, rate, window, duration, offered, admitted, confs,
		func(i int64) (int64, bool) {
			if mode != Open {
				return 0, false
			}
			return OfferTime(rate, i), true
		})
}

func buildReport(mode Mode, rate float64, window int64, duration time.Duration,
	offered, admitted int64, confs []Confirmation,
	offerTime func(int64) (int64, bool)) *Report {
	r := &Report{
		Mode:      mode,
		Rate:      rate,
		Window:    window,
		Duration:  duration,
		Offered:   offered,
		Admitted:  admitted,
		Confirmed: int64(len(confs)),
	}
	if mode != Open {
		r.Rate = 0
	}
	var lats []time.Duration
	for _, c := range confs {
		at, ok := offerTime(c.Index)
		if !ok {
			continue
		}
		lat := time.Duration(c.Time - at)
		if lat < 0 {
			lat = 0 // confirmed in the same slice it was offered
		}
		lats = append(lats, lat)
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		r.P50 = percentile(lats, 0.50)
		r.P90 = percentile(lats, 0.90)
		r.P99 = percentile(lats, 0.99)
	}
	return r
}

// percentile is nearest-rank over a sorted sample.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
