package load

import (
	"strings"
	"sync"
	"testing"
	"time"

	"bitcoinng/internal/crypto"
	"bitcoinng/internal/types"
)

// testStream returns a bound stream over a synthetic funding coinbase.
func testStream(t *testing.T, cfg StreamConfig) *Stream {
	t.Helper()
	s, err := NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Bind(crypto.HashBytes([]byte("funding")), 0)
	return s
}

func TestStreamDeterministicUnderConcurrency(t *testing.T) {
	const n = 600
	seq := testStream(t, StreamConfig{Seed: 7, Lanes: 64, MaxTxs: n})
	want := make([]crypto.Hash, n)
	for i := range want {
		want[i] = seq.Tx(int64(i)).ID()
	}

	// Eight racing generators over a fresh stream, indices interleaved, must
	// materialize identical content (compare-and-install discards loser
	// batches without letting them influence the installed ones).
	conc := testStream(t, StreamConfig{Seed: 7, Lanes: 64, MaxTxs: n})
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += 8 {
				if got := conc.Tx(int64(i)).ID(); got != want[i] {
					errs <- "tx mismatch"
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	if msg, open := <-errs; open {
		t.Fatal(msg)
	}
	if seq.Tx(0).WireSize() != 476 {
		t.Fatalf("default tx size = %d, want 476", seq.Tx(0).WireSize())
	}
}

func TestStreamChainsLanes(t *testing.T) {
	s := testStream(t, StreamConfig{Seed: 3, Lanes: 4, MaxTxs: 12})
	// Tx i spends the output of tx i-Lanes.
	for i := int64(4); i < 12; i++ {
		prev := s.Tx(i - 4)
		if got := s.Tx(i).Inputs[0].Prev; got.TxID != prev.ID() || got.Index != 0 {
			t.Fatalf("tx %d does not spend its lane predecessor", i)
		}
	}
	// Values decay by StreamFee per hop.
	if got := s.Tx(9).Outputs[0].Value; got != laneFund-3*StreamFee {
		t.Fatalf("tx 9 value = %d, want %d", got, laneFund-3*StreamFee)
	}
	// Cap honored.
	if s.Tx(12) != nil {
		t.Fatal("Tx beyond MaxTxs must be nil")
	}
	if s.Tx(-1) != nil {
		t.Fatal("negative index must be nil")
	}
}

func TestStreamReleaseAndOccupancy(t *testing.T) {
	s := testStream(t, StreamConfig{Seed: 5, Lanes: 8, MaxTxs: 200})
	s.Tx(99) // materialize 0..103 (13 batches of 8)
	if gen := s.Generated(); gen != 104 {
		t.Fatalf("generated = %d, want 104", gen)
	}
	s.Release(50) // rounds down to 48
	if got := s.Released(); got != 48 {
		t.Fatalf("released = %d, want 48 (lane-aligned)", got)
	}
	if got := s.Occupancy(); got != 104-48 {
		t.Fatalf("occupancy = %d, want %d", got, 104-48)
	}
	if s.Tx(47) != nil {
		t.Fatal("released slot must read nil")
	}
	if s.Tx(48) == nil {
		t.Fatal("first retained slot must stay readable")
	}
	// Release never regresses.
	s.Release(8)
	if got := s.Released(); got != 48 {
		t.Fatalf("release regressed to %d", got)
	}
	// Generation continues past a release with chain links intact.
	tx := s.Tx(150)
	if tx == nil {
		t.Fatal("generation stalled after release")
	}
	if idx, ok := TxIndex(tx); !ok || idx != 150 {
		t.Fatalf("TxIndex = %d,%v want 150,true", idx, ok)
	}
}

func TestTxIndexRoundTrip(t *testing.T) {
	s := testStream(t, StreamConfig{Seed: 9, Lanes: 2, MaxTxs: 10})
	for i := int64(0); i < 10; i++ {
		idx, ok := TxIndex(s.Tx(i))
		if !ok || idx != i {
			t.Fatalf("TxIndex(%d) = %d,%v", i, idx, ok)
		}
	}
	// Non-members are rejected.
	if _, ok := TxIndex(&types.Transaction{Kind: types.TxRegular}); ok {
		t.Fatal("unstamped tx must not decode")
	}
	foreign := &types.Transaction{Kind: types.TxRegular, Padding: make([]byte, 64)}
	if _, ok := TxIndex(foreign); ok {
		t.Fatal("zero padding must not decode as a stamp")
	}
	cb := &types.Transaction{Kind: types.TxCoinbase, Padding: append([]byte("NGLD"), make([]byte, 8)...)}
	if _, ok := TxIndex(cb); ok {
		t.Fatal("coinbase must not decode even with magic")
	}
}

func TestOfferedAtOfferTimeInverse(t *testing.T) {
	for _, rate := range []float64{0.5, 1, 3.5, 40, 1000} {
		for _, i := range []int64{0, 1, 7, 99, 12345} {
			at := OfferTime(rate, i)
			if got := OfferedAt(rate, at); got < i+1 {
				t.Fatalf("rate %v: OfferedAt(OfferTime(%d)) = %d, want >= %d", rate, i, got, i+1)
			}
			if at > 0 {
				if got := OfferedAt(rate, at-1); got > i+1 {
					t.Fatalf("rate %v: index %d offered too early", rate, i)
				}
			}
		}
	}
	if OfferedAt(0, 1e9) != 0 || OfferedAt(5, -1) != 0 {
		t.Fatal("degenerate OfferedAt inputs must be 0")
	}
}

func TestPercentileNearestRank(t *testing.T) {
	sorted := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := percentile(sorted, 0.50); got != 5 {
		t.Fatalf("p50 = %v, want 5", got)
	}
	if got := percentile(sorted, 0.90); got != 9 {
		t.Fatalf("p90 = %v, want 9", got)
	}
	if got := percentile(sorted, 0.99); got != 10 {
		t.Fatalf("p99 = %v, want 10", got)
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Fatalf("empty percentile = %v, want 0", got)
	}
}

func TestBlasterOpenLoop(t *testing.T) {
	s := testStream(t, StreamConfig{Seed: 11, Lanes: 8, MaxTxs: 1000})
	b := NewBlaster(s, BlasterConfig{Rate: 10})
	var got []*types.Transaction
	admit := func(tx *types.Transaction) bool { got = append(got, tx); return true }
	b.Tick(int64(2*time.Second), 0, admit)
	if b.Injected() != 20 || len(got) != 20 {
		t.Fatalf("injected %d after 2s at 10/s, want 20", b.Injected())
	}
	// Idempotent at the same instant.
	b.Tick(int64(2*time.Second), 0, admit)
	if b.Injected() != 20 {
		t.Fatal("re-tick at same time must inject nothing")
	}
	// Rejections count but do not stall the frontier.
	b.Tick(int64(3*time.Second), 0, func(*types.Transaction) bool { return false })
	if b.Injected() != 30 || b.Rejected() != 10 {
		t.Fatalf("injected=%d rejected=%d, want 30/10", b.Injected(), b.Rejected())
	}
}

func TestBlasterClosedLoop(t *testing.T) {
	s := testStream(t, StreamConfig{Seed: 12, Lanes: 8, MaxTxs: 1000})
	b := NewBlaster(s, BlasterConfig{Window: 16})
	admit := func(*types.Transaction) bool { return true }
	b.Tick(0, 0, admit)
	if b.Injected() != 16 {
		t.Fatalf("closed loop injected %d, want window 16", b.Injected())
	}
	b.Tick(int64(time.Second), 0, admit)
	if b.Injected() != 16 {
		t.Fatal("window full: nothing more until confirmations")
	}
	b.Tick(int64(2*time.Second), 10, admit)
	if b.Injected() != 26 {
		t.Fatalf("injected %d after 10 confs, want 26", b.Injected())
	}
}

func TestBlasterReportLatencies(t *testing.T) {
	s := testStream(t, StreamConfig{Seed: 13, Lanes: 4, MaxTxs: 100})
	b := NewBlaster(s, BlasterConfig{Rate: 4})
	admit := func(*types.Transaction) bool { return true }
	b.Tick(int64(time.Second), 0, admit)  // 0..3 at t=1s
	b.Tick(int64(2*time.Second), 0, admit) // 4..7 at t=2s
	confs := []Confirmation{
		{Index: 0, Time: int64(3 * time.Second)},
		{Index: 1, Time: int64(3 * time.Second)},
		{Index: 4, Time: int64(4 * time.Second)},
	}
	r := b.Report(10*time.Second, confs)
	if r.Offered != 40 { // analytic frontier: 4/s for 10s
		t.Fatalf("offered = %d, want 40", r.Offered)
	}
	if r.Admitted != 8 || r.Confirmed != 3 {
		t.Fatalf("admitted=%d confirmed=%d, want 8/3", r.Admitted, r.Confirmed)
	}
	if r.P50 != 2*time.Second {
		t.Fatalf("p50 = %v, want 2s (offered t=1s confirmed t=3s)", r.P50)
	}
	var sb strings.Builder
	r.Fprint(&sb)
	if !strings.Contains(sb.String(), "mode=open rate=4.00/s") {
		t.Fatalf("Fprint output unexpected: %q", sb.String())
	}
}

func TestBlasterReleaseBehindRetainsOfferTimes(t *testing.T) {
	s := testStream(t, StreamConfig{Seed: 14, Lanes: 8, MaxTxs: 1000})
	b := NewBlaster(s, BlasterConfig{Rate: 100})
	admit := func(*types.Transaction) bool { return true }
	b.Tick(int64(time.Second), 0, admit) // 0..99
	b.ReleaseBehind(64, 0)
	if got := s.Released(); got != 64 {
		t.Fatalf("stream released = %d, want 64", got)
	}
	// Retained indices keep their recorded times; released ones are dropped.
	if at, ok := b.offerTimeOf(64); !ok || at != int64(time.Second) {
		t.Fatalf("offer time of retained index lost: %v %v", at, ok)
	}
	if _, ok := b.offerTimeOf(63); ok {
		t.Fatal("offer time of released index must be gone")
	}
}
