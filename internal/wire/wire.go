// Package wire implements the deterministic binary serialization used by
// every on-the-wire and on-disk structure in this repository.
//
// The format is deliberately simple and self-contained:
//
//   - fixed-width integers are little-endian,
//   - variable-length integers use the Bitcoin "CompactSize" encoding,
//   - byte strings and lists are length-prefixed with a CompactSize.
//
// Encoding is deterministic: the same value always produces the same bytes,
// which is required because block hashes are computed over serialized
// headers. Decoding is strict: trailing garbage, oversized lengths, and
// non-canonical CompactSize encodings are rejected, so a hash computed over
// a decoded-then-reencoded message always matches the original.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Maximum sizes accepted by the decoder. These bound allocation before any
// validation happens, so a malicious peer cannot make a node allocate
// gigabytes from a short prefix.
const (
	// MaxMessageSize is the largest protocol message a peer will accept.
	// It comfortably exceeds the largest experiment block size (1 MB
	// payload blocks at the lowest frequency of Figure 8a).
	MaxMessageSize = 4 << 20

	// MaxListLen is the largest element count accepted for any serialized
	// list (transactions per block, inputs per transaction, ...).
	MaxListLen = 1 << 20
)

// Encoding/decoding errors.
var (
	ErrTooLarge     = errors.New("wire: size exceeds maximum")
	ErrNonCanonical = errors.New("wire: non-canonical encoding")
	ErrTrailing     = errors.New("wire: trailing bytes after message")
)

// Writer serializes values into an in-memory buffer. The zero value is ready
// to use. Writer never fails: it grows its buffer as needed, and callers read
// the result with Bytes.
type Writer struct {
	buf []byte
}

// NewWriter returns a Writer with capacity preallocated for n bytes.
func NewWriter(n int) *Writer {
	return &Writer{buf: make([]byte, 0, n)}
}

// Bytes returns the serialized contents. The slice aliases the Writer's
// internal buffer and is invalidated by further writes.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Reset truncates the writer so the buffer can be reused.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// Uint8 appends a single byte.
func (w *Writer) Uint8(v uint8) { w.buf = append(w.buf, v) }

// Bool appends a boolean as one byte (0 or 1).
func (w *Writer) Bool(v bool) {
	if v {
		w.Uint8(1)
	} else {
		w.Uint8(0)
	}
}

// Uint16 appends a little-endian 16-bit integer.
func (w *Writer) Uint16(v uint16) {
	w.buf = binary.LittleEndian.AppendUint16(w.buf, v)
}

// Uint32 appends a little-endian 32-bit integer.
func (w *Writer) Uint32(v uint32) {
	w.buf = binary.LittleEndian.AppendUint32(w.buf, v)
}

// Uint64 appends a little-endian 64-bit integer.
func (w *Writer) Uint64(v uint64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}

// Int64 appends a little-endian 64-bit signed integer.
func (w *Writer) Int64(v int64) { w.Uint64(uint64(v)) }

// VarInt appends v using the CompactSize encoding: values below 0xfd are a
// single byte; larger values use a 0xfd/0xfe/0xff marker followed by a
// little-endian 16/32/64-bit integer. The encoder always emits the shortest
// form, and the decoder rejects longer (non-canonical) forms.
func (w *Writer) VarInt(v uint64) {
	switch {
	case v < 0xfd:
		w.Uint8(uint8(v))
	case v <= math.MaxUint16:
		w.Uint8(0xfd)
		w.Uint16(uint16(v))
	case v <= math.MaxUint32:
		w.Uint8(0xfe)
		w.Uint32(uint32(v))
	default:
		w.Uint8(0xff)
		w.Uint64(v)
	}
}

// Bytes32 appends a fixed 32-byte array (hashes).
func (w *Writer) Bytes32(v [32]byte) { w.buf = append(w.buf, v[:]...) }

// VarBytes appends a CompactSize length prefix followed by the bytes.
func (w *Writer) VarBytes(b []byte) {
	w.VarInt(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// Raw appends bytes with no length prefix. The caller is responsible for
// framing.
func (w *Writer) Raw(b []byte) { w.buf = append(w.buf, b...) }

// Reader decodes values from a byte slice. Reader records the first error it
// encounters; once an error occurs every subsequent read returns zero values,
// so call sites can decode a whole structure and check Err once at the end.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a Reader over b. The Reader does not copy b.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the first error encountered, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining reports how many undecoded bytes are left.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Finish returns an error if decoding failed or if any bytes remain.
func (r *Reader) Finish() error {
	if r.err != nil {
		return r.err
	}
	if r.Remaining() != 0 {
		return fmt.Errorf("%w: %d bytes", ErrTrailing, r.Remaining())
	}
	return nil
}

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.Remaining() < n {
		r.fail(io.ErrUnexpectedEOF)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// Uint8 decodes a single byte.
func (r *Reader) Uint8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool decodes a single byte as a boolean. Only 0 and 1 are accepted:
// booleans have exactly one encoding each, like every other construct here,
// so a decoded-then-reencoded message always reproduces its original bytes
// (FuzzBlockWire caught the previous any-nonzero reading violating that).
func (r *Reader) Bool() bool {
	b := r.Uint8()
	if r.err == nil && b > 1 {
		r.fail(fmt.Errorf("%w: boolean byte %#x", ErrNonCanonical, b))
	}
	return b == 1
}

// Uint16 decodes a little-endian 16-bit integer.
func (r *Reader) Uint16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// Uint32 decodes a little-endian 32-bit integer.
func (r *Reader) Uint32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// Uint64 decodes a little-endian 64-bit integer.
func (r *Reader) Uint64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Int64 decodes a little-endian 64-bit signed integer.
func (r *Reader) Int64() int64 { return int64(r.Uint64()) }

// VarInt decodes a canonical CompactSize integer.
func (r *Reader) VarInt() uint64 {
	tag := r.Uint8()
	if r.err != nil {
		return 0
	}
	switch tag {
	case 0xfd:
		v := r.Uint16()
		if r.err == nil && v < 0xfd {
			r.fail(ErrNonCanonical)
		}
		return uint64(v)
	case 0xfe:
		v := r.Uint32()
		if r.err == nil && v <= math.MaxUint16 {
			r.fail(ErrNonCanonical)
		}
		return uint64(v)
	case 0xff:
		v := r.Uint64()
		if r.err == nil && v <= math.MaxUint32 {
			r.fail(ErrNonCanonical)
		}
		return v
	default:
		return uint64(tag)
	}
}

// Length decodes a CompactSize used as a length and bounds it by max.
func (r *Reader) Length(max uint64) int {
	v := r.VarInt()
	if r.err != nil {
		return 0
	}
	if v > max {
		r.fail(fmt.Errorf("%w: length %d > %d", ErrTooLarge, v, max))
		return 0
	}
	return int(v)
}

// Bytes32 decodes a fixed 32-byte array.
func (r *Reader) Bytes32() (v [32]byte) {
	b := r.take(32)
	if b != nil {
		copy(v[:], b)
	}
	return v
}

// VarBytes decodes a length-prefixed byte string of at most max bytes. The
// returned slice is a copy and remains valid after the Reader's buffer is
// reused.
func (r *Reader) VarBytes(max uint64) []byte {
	n := r.Length(max)
	b := r.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// Raw decodes n bytes with no length prefix, returning a copy.
func (r *Reader) Raw(n int) []byte {
	b := r.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// Encoder is implemented by values that serialize themselves to a Writer.
type Encoder interface {
	EncodeWire(w *Writer)
}

// Decoder is implemented by values that deserialize themselves from a Reader.
type Decoder interface {
	DecodeWire(r *Reader)
}

// Encode serializes e into a fresh byte slice.
func Encode(e Encoder) []byte {
	w := NewWriter(256)
	e.EncodeWire(w)
	return w.Bytes()
}

// Decode deserializes b into d, requiring that all bytes are consumed.
func Decode(b []byte, d Decoder) error {
	r := NewReader(b)
	d.DecodeWire(r)
	return r.Finish()
}
