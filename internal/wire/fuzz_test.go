package wire

import (
	"bytes"
	"testing"
)

// FuzzEnvelope round-trips the stream framing: any byte string that
// ReadEnvelope accepts must re-encode (WriteTo) to bytes that decode to the
// identical envelope, and the re-encoding must equal the consumed input
// prefix — the header has exactly one canonical form, so a hash or
// checksum computed by a relay hop can never disagree with the sender's.
//
//	go test -fuzz=FuzzEnvelope -fuzztime=30s ./internal/wire
func FuzzEnvelope(f *testing.F) {
	valid := &Envelope{Type: MsgPing, Payload: []byte("hello")}
	var buf bytes.Buffer
	if _, err := valid.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x4e, 0x47, 0x30, 0x36, 1, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, raw []byte) {
		env, err := ReadEnvelope(bytes.NewReader(raw))
		if err != nil {
			return // rejection is fine; silent mutation is not
		}
		var out bytes.Buffer
		if _, err := env.WriteTo(&out); err != nil {
			t.Fatalf("decoded envelope failed to re-encode: %v", err)
		}
		consumed := envelopeHeaderSize + len(env.Payload)
		if !bytes.Equal(out.Bytes(), raw[:consumed]) {
			t.Fatalf("re-encoding differs from accepted input:\n in: %x\nout: %x",
				raw[:consumed], out.Bytes())
		}
		again, err := ReadEnvelope(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded envelope rejected: %v", err)
		}
		if again.Type != env.Type || !bytes.Equal(again.Payload, env.Payload) {
			t.Fatal("envelope mutated across a round trip")
		}
	})
}

// TestBoolStrict pins the FuzzBlockWire finding: booleans decode only from
// 0 or 1; any other byte is non-canonical and must fail the whole message,
// or a relay hop would re-encode a block to different bytes than it
// received.
func TestBoolStrict(t *testing.T) {
	for b, want := range map[byte]bool{0: false, 1: true} {
		r := NewReader([]byte{b})
		if got := r.Bool(); got != want || r.Finish() != nil {
			t.Errorf("Bool(%#x) = %v, err %v", b, got, r.Finish())
		}
	}
	for _, b := range []byte{2, 0x30, 0xff} {
		r := NewReader([]byte{b})
		r.Bool()
		if r.Err() == nil {
			t.Errorf("Bool(%#x) accepted", b)
		}
	}
}

// FuzzVarInt pins the CompactSize canonicality contract: any input the
// reader accepts as a VarInt re-encodes to exactly the consumed bytes
// (shortest form), and VarBytes never over- or under-consumes. Block hashes
// are computed over serializations containing these, so a second valid
// encoding of the same value would be a consensus split.
//
//	go test -fuzz=FuzzVarInt -fuzztime=30s ./internal/wire
func FuzzVarInt(f *testing.F) {
	f.Add([]byte{0x05})
	f.Add([]byte{0xfd, 0xfd, 0x00})
	f.Add([]byte{0xfe, 0xff, 0xff, 0x00, 0x00})
	f.Add([]byte{0xff, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Fuzz(func(t *testing.T, raw []byte) {
		r := NewReader(raw)
		v := r.VarInt()
		if r.Err() != nil {
			return
		}
		consumed := len(raw) - r.Remaining()
		w := NewWriter(9)
		w.VarInt(v)
		if !bytes.Equal(w.Bytes(), raw[:consumed]) {
			t.Fatalf("VarInt(%d): accepted %x, canonical %x", v, raw[:consumed], w.Bytes())
		}

		// VarBytes on the same input: on success the returned length must
		// match its prefix and consumption must be exact.
		r2 := NewReader(raw)
		b := r2.VarBytes(uint64(len(raw)))
		if r2.Err() != nil {
			return
		}
		if got := len(raw) - r2.Remaining(); got != int(v)+consumed {
			t.Fatalf("VarBytes consumed %d bytes, want %d", got, int(v)+consumed)
		}
		if uint64(len(b)) != v {
			t.Fatalf("VarBytes returned %d bytes under a %d prefix", len(b), v)
		}
	})
}
