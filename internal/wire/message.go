package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// MsgType identifies a protocol message inside an Envelope. The protocol
// packages register concrete payload types against these identifiers.
type MsgType uint8

// Message type identifiers. The numeric values are part of the wire format.
const (
	MsgInvalid    MsgType = iota // never sent
	MsgVersion                   // p2p handshake
	MsgVerAck                    // p2p handshake acknowledgment
	MsgInv                       // inventory announcement (block hashes)
	MsgGetData                   // request for announced inventory
	MsgBlock                     // Bitcoin block
	MsgKeyBlock                  // Bitcoin-NG key block
	MsgMicroBlock                // Bitcoin-NG microblock
	MsgTx                        // loose transaction
	//nglint:allow parity reserved wire-format slot: the identifiers are part of the numbered frame layout, but no transport implements liveness probes yet
	MsgPing // liveness probe
	//nglint:allow parity reserved wire-format slot: the identifiers are part of the numbered frame layout, but no transport implements liveness probes yet
	MsgPong       // liveness response
	MsgTxBatch    // batched loose-transaction relay
	MsgGetBlocks  // locator-based catch-up sync request
	MsgBlockBatch // bounded batch of main-chain blocks (sync response)
	msgSentinel   // one past the last valid type
)

var msgTypeNames = [...]string{
	MsgInvalid:    "invalid",
	MsgVersion:    "version",
	MsgVerAck:     "verack",
	MsgInv:        "inv",
	MsgGetData:    "getdata",
	MsgBlock:      "block",
	MsgKeyBlock:   "keyblock",
	MsgMicroBlock: "microblock",
	MsgTx:         "tx",
	MsgPing:       "ping",
	MsgPong:       "pong",
	MsgTxBatch:    "txbatch",
	MsgGetBlocks:  "getblocks",
	MsgBlockBatch: "blockbatch",
}

// String returns the canonical lower-case message name.
func (t MsgType) String() string {
	if int(t) < len(msgTypeNames) {
		return msgTypeNames[t]
	}
	return fmt.Sprintf("msgtype(%d)", uint8(t))
}

// Valid reports whether t identifies a known message type.
func (t MsgType) Valid() bool { return t > MsgInvalid && t < msgSentinel }

// Envelope frames a message payload for stream transports. The frame layout
// is:
//
//	magic   uint32  // network identifier, rejects cross-network connects
//	type    uint8
//	length  uint32  // payload length, <= MaxMessageSize
//	crc32   uint32  // IEEE CRC over the payload
//	payload [length]byte
//
// The discrete-event simulator does not use Envelope (it passes decoded
// messages in memory and charges the network model with WireSize); only the
// TCP transport does.
type Envelope struct {
	Type    MsgType
	Payload []byte
}

// Magic identifies this network on the wire ("NG06" little-endian).
const Magic uint32 = 0x3630474e

const envelopeHeaderSize = 4 + 1 + 4 + 4

// Framing errors.
var (
	ErrBadMagic    = errors.New("wire: bad network magic")
	ErrBadChecksum = errors.New("wire: payload checksum mismatch")
	ErrBadMsgType  = errors.New("wire: unknown message type")
)

// WriteTo serializes the framed message to w.
func (e *Envelope) WriteTo(w io.Writer) (int64, error) {
	if !e.Type.Valid() {
		return 0, fmt.Errorf("%w: %d", ErrBadMsgType, e.Type)
	}
	if len(e.Payload) > MaxMessageSize {
		return 0, fmt.Errorf("%w: payload %d bytes", ErrTooLarge, len(e.Payload))
	}
	hdr := make([]byte, envelopeHeaderSize)
	binary.LittleEndian.PutUint32(hdr[0:4], Magic)
	hdr[4] = byte(e.Type)
	binary.LittleEndian.PutUint32(hdr[5:9], uint32(len(e.Payload)))
	binary.LittleEndian.PutUint32(hdr[9:13], crc32.ChecksumIEEE(e.Payload))
	n, err := w.Write(hdr)
	total := int64(n)
	if err != nil {
		return total, err
	}
	n, err = w.Write(e.Payload)
	return total + int64(n), err
}

// ReadEnvelope reads one framed message from r, validating magic, length,
// and checksum before returning the payload.
func ReadEnvelope(r io.Reader) (*Envelope, error) {
	hdr := make([]byte, envelopeHeaderSize)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	if got := binary.LittleEndian.Uint32(hdr[0:4]); got != Magic {
		return nil, fmt.Errorf("%w: %#x", ErrBadMagic, got)
	}
	typ := MsgType(hdr[4])
	if !typ.Valid() {
		return nil, fmt.Errorf("%w: %d", ErrBadMsgType, hdr[4])
	}
	length := binary.LittleEndian.Uint32(hdr[5:9])
	if length > MaxMessageSize {
		return nil, fmt.Errorf("%w: payload %d bytes", ErrTooLarge, length)
	}
	want := binary.LittleEndian.Uint32(hdr[9:13])
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	if crc32.ChecksumIEEE(payload) != want {
		return nil, ErrBadChecksum
	}
	return &Envelope{Type: typ, Payload: payload}, nil
}
