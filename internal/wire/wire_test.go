package wire

import (
	"bytes"
	"io"
	"math"
	"testing"
	"testing/quick"
)

func TestWriterReaderRoundTripFixed(t *testing.T) {
	w := NewWriter(0)
	w.Uint8(0xab)
	w.Bool(true)
	w.Bool(false)
	w.Uint16(0x1234)
	w.Uint32(0xdeadbeef)
	w.Uint64(0x0123456789abcdef)
	w.Int64(-42)
	var h [32]byte
	for i := range h {
		h[i] = byte(i)
	}
	w.Bytes32(h)
	w.VarBytes([]byte("hello"))
	w.Raw([]byte{9, 9})

	r := NewReader(w.Bytes())
	if got := r.Uint8(); got != 0xab {
		t.Errorf("Uint8 = %#x", got)
	}
	if !r.Bool() || r.Bool() {
		t.Errorf("Bool round trip failed")
	}
	if got := r.Uint16(); got != 0x1234 {
		t.Errorf("Uint16 = %#x", got)
	}
	if got := r.Uint32(); got != 0xdeadbeef {
		t.Errorf("Uint32 = %#x", got)
	}
	if got := r.Uint64(); got != 0x0123456789abcdef {
		t.Errorf("Uint64 = %#x", got)
	}
	if got := r.Int64(); got != -42 {
		t.Errorf("Int64 = %d", got)
	}
	if got := r.Bytes32(); got != h {
		t.Errorf("Bytes32 = %x", got)
	}
	if got := r.VarBytes(100); !bytes.Equal(got, []byte("hello")) {
		t.Errorf("VarBytes = %q", got)
	}
	if got := r.Raw(2); !bytes.Equal(got, []byte{9, 9}) {
		t.Errorf("Raw = %v", got)
	}
	if err := r.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestVarIntBoundaries(t *testing.T) {
	cases := []struct {
		v    uint64
		size int
	}{
		{0, 1}, {1, 1}, {0xfc, 1},
		{0xfd, 3}, {0xffff, 3},
		{0x10000, 5}, {0xffffffff, 5},
		{0x100000000, 9}, {math.MaxUint64, 9},
	}
	for _, c := range cases {
		w := NewWriter(0)
		w.VarInt(c.v)
		if w.Len() != c.size {
			t.Errorf("VarInt(%d) encoded to %d bytes, want %d", c.v, w.Len(), c.size)
		}
		r := NewReader(w.Bytes())
		if got := r.VarInt(); got != c.v {
			t.Errorf("VarInt(%d) decoded to %d", c.v, got)
		}
		if err := r.Finish(); err != nil {
			t.Errorf("VarInt(%d) Finish: %v", c.v, err)
		}
	}
}

func TestVarIntRoundTripProperty(t *testing.T) {
	f := func(v uint64) bool {
		w := NewWriter(0)
		w.VarInt(v)
		r := NewReader(w.Bytes())
		got := r.VarInt()
		return got == v && r.Finish() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVarBytesRoundTripProperty(t *testing.T) {
	f := func(b []byte) bool {
		w := NewWriter(0)
		w.VarBytes(b)
		r := NewReader(w.Bytes())
		got := r.VarBytes(uint64(len(b)) + 1)
		return bytes.Equal(got, b) && r.Finish() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNonCanonicalVarIntRejected(t *testing.T) {
	// 0xfd prefix encoding a value that fits in one byte.
	cases := [][]byte{
		{0xfd, 0x01, 0x00},                               // 1 as 3 bytes
		{0xfe, 0xff, 0xff, 0x00, 0x00},                   // 0xffff as 5 bytes
		{0xff, 0x01, 0x00, 0x00, 0x00, 0, 0, 0, 0},       // 1 as 9 bytes
		{0xff, 0xff, 0xff, 0xff, 0xff, 0x00, 0, 0, 0x00}, // uint32 max as 9 bytes
	}
	for _, b := range cases {
		r := NewReader(b)
		r.VarInt()
		if r.Err() == nil {
			t.Errorf("VarInt(% x): non-canonical encoding accepted", b)
		}
	}
}

func TestReaderShortInput(t *testing.T) {
	r := NewReader([]byte{1, 2})
	r.Uint32()
	if r.Err() != io.ErrUnexpectedEOF {
		t.Errorf("err = %v, want unexpected EOF", r.Err())
	}
	// Subsequent reads keep returning zero values without panicking.
	if got := r.Uint64(); got != 0 {
		t.Errorf("read after error = %d, want 0", got)
	}
}

func TestReaderTrailingBytes(t *testing.T) {
	w := NewWriter(0)
	w.Uint8(7)
	w.Uint8(8)
	r := NewReader(w.Bytes())
	r.Uint8()
	if err := r.Finish(); err == nil {
		t.Fatal("Finish accepted trailing bytes")
	}
}

func TestLengthBound(t *testing.T) {
	w := NewWriter(0)
	w.VarInt(1000)
	r := NewReader(w.Bytes())
	r.Length(999)
	if r.Err() == nil {
		t.Fatal("Length accepted value above bound")
	}
}

type testMsg struct {
	A uint64
	B []byte
}

func (m *testMsg) EncodeWire(w *Writer) {
	w.Uint64(m.A)
	w.VarBytes(m.B)
}

func (m *testMsg) DecodeWire(r *Reader) {
	m.A = r.Uint64()
	m.B = r.VarBytes(MaxMessageSize)
}

func TestEncodeDecodeHelpers(t *testing.T) {
	in := &testMsg{A: 77, B: []byte("payload")}
	b := Encode(in)
	var out testMsg
	if err := Decode(b, &out); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if out.A != in.A || !bytes.Equal(out.B, in.B) {
		t.Errorf("round trip mismatch: %+v != %+v", out, in)
	}
	// Extra byte must be rejected.
	if err := Decode(append(b, 0), &out); err == nil {
		t.Error("Decode accepted trailing byte")
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := &Envelope{Type: MsgBlock, Payload: []byte("block bytes")}
	if _, err := in.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	out, err := ReadEnvelope(&buf)
	if err != nil {
		t.Fatalf("ReadEnvelope: %v", err)
	}
	if out.Type != in.Type || !bytes.Equal(out.Payload, in.Payload) {
		t.Errorf("round trip mismatch: %+v != %+v", out, in)
	}
}

func TestEnvelopeRejectsCorruption(t *testing.T) {
	frame := func() []byte {
		var buf bytes.Buffer
		e := &Envelope{Type: MsgInv, Payload: []byte("abcdef")}
		if _, err := e.WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
		return buf.Bytes()
	}

	// Corrupt magic.
	b := frame()
	b[0] ^= 0xff
	if _, err := ReadEnvelope(bytes.NewReader(b)); err == nil {
		t.Error("accepted bad magic")
	}

	// Corrupt message type.
	b = frame()
	b[4] = 0xee
	if _, err := ReadEnvelope(bytes.NewReader(b)); err == nil {
		t.Error("accepted bad message type")
	}

	// Corrupt payload byte (checksum must catch it).
	b = frame()
	b[len(b)-1] ^= 0x01
	if _, err := ReadEnvelope(bytes.NewReader(b)); err == nil {
		t.Error("accepted corrupted payload")
	}

	// Truncated payload.
	b = frame()
	if _, err := ReadEnvelope(bytes.NewReader(b[:len(b)-2])); err == nil {
		t.Error("accepted truncated frame")
	}
}

func TestEnvelopeRejectsOversize(t *testing.T) {
	e := &Envelope{Type: MsgBlock, Payload: make([]byte, MaxMessageSize+1)}
	if _, err := e.WriteTo(io.Discard); err == nil {
		t.Error("WriteTo accepted oversized payload")
	}
}

func TestMsgTypeString(t *testing.T) {
	if MsgMicroBlock.String() != "microblock" {
		t.Errorf("MsgMicroBlock.String() = %q", MsgMicroBlock.String())
	}
	if MsgType(200).Valid() {
		t.Error("MsgType(200) reported valid")
	}
}
