// Package crypto provides the cryptographic substrate for the blockchain
// protocols in this repository: double-SHA256 block hashing, compact
// difficulty targets and proof-of-work arithmetic, Merkle trees over
// transaction hashes, and Ed25519 keys for Bitcoin-NG microblock signing.
//
// Everything is built on the Go standard library (crypto/sha256,
// crypto/ed25519, math/big).
package crypto

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// Hash is a 32-byte digest. Block IDs, transaction IDs, and Merkle roots are
// all Hashes. It is a value type usable as a map key.
type Hash [32]byte

// HashSize is the byte length of a Hash, for wire-size accounting.
const HashSize = len(Hash{})

// ZeroHash is the all-zero hash, used as the previous-block reference of the
// genesis block.
var ZeroHash Hash

// HashBytes returns the double-SHA256 of b, the digest Bitcoin uses for
// block headers and transactions.
func HashBytes(b []byte) Hash {
	first := sha256.Sum256(b)
	return sha256.Sum256(first[:])
}

// String returns the hash in the conventional display order: hex of the
// byte-reversed digest, as block explorers print it.
func (h Hash) String() string {
	var rev [32]byte
	for i := range h {
		rev[31-i] = h[i]
	}
	return hex.EncodeToString(rev[:])
}

// Short returns the first 8 hex characters of the display form, for logs.
func (h Hash) Short() string { return h.String()[:8] }

// IsZero reports whether h is the all-zero hash.
func (h Hash) IsZero() bool { return h == ZeroHash }

// ParseHash parses a 64-character display-order hex string.
func ParseHash(s string) (Hash, error) {
	var h Hash
	if len(s) != 64 {
		return h, fmt.Errorf("crypto: hash hex must be 64 chars, got %d", len(s))
	}
	raw, err := hex.DecodeString(s)
	if err != nil {
		return h, fmt.Errorf("crypto: bad hash hex: %w", err)
	}
	for i := range h {
		h[i] = raw[31-i]
	}
	return h, nil
}
