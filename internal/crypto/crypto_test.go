package crypto

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHashBytesKnownVector(t *testing.T) {
	// Double SHA-256 of the empty string.
	got := HashBytes(nil).String()
	want := "56944c5d3f98413ef45cf54545538103cc9f298e0575820ad3591376e2e0f65d"
	if got != want {
		t.Errorf("HashBytes(nil) = %s, want %s", got, want)
	}
}

func TestHashStringParseRoundTrip(t *testing.T) {
	f := func(raw [32]byte) bool {
		h := Hash(raw)
		parsed, err := ParseHash(h.String())
		return err == nil && parsed == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseHashRejectsBadInput(t *testing.T) {
	if _, err := ParseHash("abc"); err == nil {
		t.Error("accepted short hex")
	}
	if _, err := ParseHash(string(make([]byte, 64))); err == nil {
		t.Error("accepted non-hex input")
	}
}

func TestCompactTargetRoundTrip(t *testing.T) {
	// Bitcoin's historical genesis target.
	c := CompactTarget(0x1d00ffff)
	big := c.Big()
	back := CompactFromBig(big)
	if back != c {
		t.Errorf("round trip %#x -> %#x", uint32(c), uint32(back))
	}
}

func TestCompactFromBigRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		// Random targets with random bit lengths up to 255 bits.
		bits := 8 + rng.Intn(247)
		v := new(big.Int).Rand(rng, new(big.Int).Lsh(bigOne, uint(bits)))
		if v.Sign() == 0 {
			continue
		}
		c := CompactFromBig(v)
		// Compact form keeps only 3 mantissa bytes, so round-tripping
		// through Big must be a fixed point.
		again := CompactFromBig(c.Big())
		if again != c {
			t.Fatalf("compact not a fixed point: %#x -> %#x (v=%s)", uint32(c), uint32(again), v)
		}
	}
}

func TestCheckProofOfWork(t *testing.T) {
	// The all-zero hash is below any positive target.
	if !CheckProofOfWork(ZeroHash, CompactTarget(0x1d00ffff)) {
		t.Error("zero hash rejected")
	}
	// The all-ones hash is above any realistic target.
	var ones Hash
	for i := range ones {
		ones[i] = 0xff
	}
	if CheckProofOfWork(ones, CompactTarget(0x1d00ffff)) {
		t.Error("max hash accepted")
	}
	// Everything passes the easiest target.
	if !CheckProofOfWork(ones, EasiestTarget) {
		t.Error("max hash rejected by easiest target")
	}
}

func TestWorkForTargetMonotonic(t *testing.T) {
	hard := CompactTarget(0x1b00ffff) // small target, hard
	easy := CompactTarget(0x1d00ffff) // large target, easy
	if WorkForTarget(hard).Cmp(WorkForTarget(easy)) <= 0 {
		t.Error("harder target should represent more work")
	}
}

func TestRetargetDirection(t *testing.T) {
	base := CompactTarget(0x1d00ffff)
	// Blocks arriving too fast: target must shrink (difficulty up).
	faster := Retarget(base, 300, 600)
	if faster.Big().Cmp(base.Big()) >= 0 {
		t.Error("retarget did not raise difficulty for fast blocks")
	}
	// Blocks arriving too slow: target must grow (difficulty down).
	slower := Retarget(base, 1200, 600)
	if slower.Big().Cmp(base.Big()) <= 0 {
		t.Error("retarget did not lower difficulty for slow blocks")
	}
	// Clamped at 4x.
	clamped := Retarget(base, 600*100, 600)
	ratio := new(big.Float).Quo(
		new(big.Float).SetInt(clamped.Big()),
		new(big.Float).SetInt(base.Big()))
	r, _ := ratio.Float64()
	if r > 4.05 {
		t.Errorf("retarget ratio %v exceeds 4x clamp", r)
	}
	// Degenerate inputs leave the target unchanged.
	if Retarget(base, 0, 600) != base || Retarget(base, 600, 0) != base {
		t.Error("degenerate retarget changed target")
	}
}

func TestMerkleRootBasics(t *testing.T) {
	if !MerkleRoot(nil).IsZero() {
		t.Error("empty tree root should be zero")
	}
	leaf := HashBytes([]byte("a"))
	if MerkleRoot([]Hash{leaf}) != leaf {
		t.Error("single-leaf root should equal the leaf")
	}
}

func TestMerkleRootSensitivity(t *testing.T) {
	leaves := make([]Hash, 7)
	for i := range leaves {
		leaves[i] = HashBytes([]byte{byte(i)})
	}
	root := MerkleRoot(leaves)
	for i := range leaves {
		mutated := make([]Hash, len(leaves))
		copy(mutated, leaves)
		mutated[i] = HashBytes([]byte{0xff, byte(i)})
		if MerkleRoot(mutated) == root {
			t.Errorf("mutating leaf %d did not change the root", i)
		}
	}
}

func TestMerkleProofAllPositions(t *testing.T) {
	for n := 1; n <= 12; n++ {
		leaves := make([]Hash, n)
		for i := range leaves {
			leaves[i] = HashBytes([]byte{byte(n), byte(i)})
		}
		root := MerkleRoot(leaves)
		for i := 0; i < n; i++ {
			proof := BuildMerkleProof(leaves, i)
			if proof == nil {
				t.Fatalf("n=%d: nil proof for index %d", n, i)
			}
			if !proof.Verify(leaves[i], root) {
				t.Errorf("n=%d: proof for leaf %d failed", n, i)
			}
			// A proof must not verify for a different leaf.
			wrong := HashBytes([]byte{0xaa, byte(i)})
			if proof.Verify(wrong, root) {
				t.Errorf("n=%d: proof verified for wrong leaf %d", n, i)
			}
		}
	}
}

func TestMerkleProofOutOfRange(t *testing.T) {
	leaves := []Hash{HashBytes([]byte("x"))}
	if BuildMerkleProof(leaves, -1) != nil || BuildMerkleProof(leaves, 1) != nil {
		t.Error("out-of-range proof not rejected")
	}
	if BuildMerkleProof(nil, 0) != nil {
		t.Error("empty-tree proof not rejected")
	}
}

func TestKeySignVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	priv, err := GenerateKey(rng)
	if err != nil {
		t.Fatalf("GenerateKey: %v", err)
	}
	msg := []byte("microblock header")
	sig := priv.Sign(msg)
	pub := priv.Public()
	if !pub.Verify(msg, sig) {
		t.Error("valid signature rejected")
	}
	msg[0] ^= 1
	if pub.Verify(msg, sig) {
		t.Error("signature verified for altered message")
	}
	other, err := GenerateKey(rng)
	if err != nil {
		t.Fatalf("GenerateKey: %v", err)
	}
	msg[0] ^= 1
	if other.Public().Verify(msg, sig) {
		t.Error("signature verified under wrong key")
	}
}

func TestDeterministicKeyGeneration(t *testing.T) {
	a, err := GenerateKey(rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateKey(rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if a.Public() != b.Public() {
		t.Error("same seed produced different keys")
	}
}

func TestAddress(t *testing.T) {
	priv, _ := GenerateKey(rand.New(rand.NewSource(9)))
	addr := priv.Public().Addr()
	if addr.IsZero() {
		t.Error("address of real key is zero")
	}
	var zero Address
	if !zero.IsZero() {
		t.Error("zero address not reported zero")
	}
	if len(addr.String()) != 8 {
		t.Errorf("address short form = %q", addr.String())
	}
}
