package crypto

// MerkleRoot computes the Merkle root of a list of leaf hashes using the
// Bitcoin construction: pairs of nodes are concatenated and double-SHA256
// hashed; an odd node at any level is paired with itself. An empty list
// yields the zero hash (only the degenerate empty-block case).
func MerkleRoot(leaves []Hash) Hash {
	switch len(leaves) {
	case 0:
		return ZeroHash
	case 1:
		return leaves[0]
	}
	level := make([]Hash, len(leaves))
	copy(level, leaves)
	for len(level) > 1 {
		if len(level)%2 == 1 {
			level = append(level, level[len(level)-1])
		}
		next := level[:len(level)/2]
		for i := range next {
			next[i] = hashPair(level[2*i], level[2*i+1])
		}
		level = next
	}
	return level[0]
}

// MerkleProof is the authentication path for one leaf: the sibling hash at
// each level plus, per level, whether the sibling sits to the left.
type MerkleProof struct {
	Siblings []Hash
	// Left[i] reports whether Siblings[i] is the left operand when
	// recomputing level i+1.
	Left []bool
}

// BuildMerkleProof returns the proof for leaves[index]. It returns nil when
// index is out of range or the tree is empty.
func BuildMerkleProof(leaves []Hash, index int) *MerkleProof {
	if index < 0 || index >= len(leaves) || len(leaves) == 0 {
		return nil
	}
	proof := &MerkleProof{}
	level := make([]Hash, len(leaves))
	copy(level, leaves)
	pos := index
	for len(level) > 1 {
		if len(level)%2 == 1 {
			level = append(level, level[len(level)-1])
		}
		sib := pos ^ 1
		proof.Siblings = append(proof.Siblings, level[sib])
		proof.Left = append(proof.Left, sib < pos)
		next := level[:len(level)/2]
		for i := range next {
			next[i] = hashPair(level[2*i], level[2*i+1])
		}
		level = next
		pos /= 2
	}
	return proof
}

// Verify recomputes the root from leaf and the proof and compares it to
// root.
func (p *MerkleProof) Verify(leaf, root Hash) bool {
	h := leaf
	for i, sib := range p.Siblings {
		if i < len(p.Left) && p.Left[i] {
			h = hashPair(sib, h)
		} else {
			h = hashPair(h, sib)
		}
	}
	return h == root
}

func hashPair(a, b Hash) Hash {
	var buf [64]byte
	copy(buf[:32], a[:])
	copy(buf[32:], b[:])
	return HashBytes(buf[:])
}
