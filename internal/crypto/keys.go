package crypto

import (
	"crypto/ed25519"
	"fmt"
	"io"
	"sync"
)

// Ed25519 sizes re-exported so callers do not import crypto/ed25519.
const (
	PublicKeySize = ed25519.PublicKeySize
	SignatureSize = ed25519.SignatureSize
)

// PrivateKey signs microblock headers and transactions. Key material is
// derived from the seed lazily: expanding an Ed25519 seed into a signing key
// costs a scalar-base multiplication, and large experiments create one key
// per node while only the nodes that actually win blocks (or lead) ever
// sign — so generation is a 32-byte read and the expansion is paid on first
// use only.
type PrivateKey struct {
	seed [ed25519.SeedSize]byte

	once sync.Once
	key  ed25519.PrivateKey
	pub  PublicKey
}

// expand derives the signing key and public key from the seed once.
func (p *PrivateKey) expand() {
	p.once.Do(func() {
		p.key = ed25519.NewKeyFromSeed(p.seed[:])
		copy(p.pub[:], p.key[ed25519.SeedSize:])
	})
}

// PublicKey verifies signatures. Key blocks carry the leader's PublicKey
// (§4.1: "a key block contains a public key that will be used in the
// subsequent microblocks").
type PublicKey [PublicKeySize]byte

// Signature is a detached Ed25519 signature.
type Signature [SignatureSize]byte

// GenerateKey creates a key pair from the given entropy source. In
// simulations the source is the experiment's deterministic RNG; live nodes
// pass crypto/rand.Reader.
func GenerateKey(rand io.Reader) (*PrivateKey, error) {
	p := &PrivateKey{}
	if _, err := io.ReadFull(rand, p.seed[:]); err != nil {
		return nil, fmt.Errorf("crypto: generate key: %w", err)
	}
	return p, nil
}

// Public returns the matching public key.
func (p *PrivateKey) Public() PublicKey {
	p.expand()
	return p.pub
}

// Sign signs msg.
func (p *PrivateKey) Sign(msg []byte) Signature {
	p.expand()
	var sig Signature
	copy(sig[:], ed25519.Sign(p.key, msg))
	return sig
}

// Verify reports whether sig is a valid signature of msg under pub.
func (pub PublicKey) Verify(msg []byte, sig Signature) bool {
	return ed25519.Verify(pub[:], msg, sig[:])
}

// Address is the short identifier funds are paid to: the double-SHA256 of a
// public key (an analogue of Bitcoin's pay-to-pubkey-hash).
type Address Hash

// Addr returns the address of the public key.
func (pub PublicKey) Addr() Address { return Address(HashBytes(pub[:])) }

// String abbreviates the address for logs.
func (a Address) String() string { return Hash(a).Short() }

// IsZero reports whether a is the zero address (burn / unset).
func (a Address) IsZero() bool { return Hash(a).IsZero() }
