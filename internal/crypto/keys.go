package crypto

import (
	"crypto/ed25519"
	"fmt"
	"io"
)

// Ed25519 sizes re-exported so callers do not import crypto/ed25519.
const (
	PublicKeySize = ed25519.PublicKeySize
	SignatureSize = ed25519.SignatureSize
)

// PrivateKey signs microblock headers and transactions.
type PrivateKey struct {
	key ed25519.PrivateKey
}

// PublicKey verifies signatures. Key blocks carry the leader's PublicKey
// (§4.1: "a key block contains a public key that will be used in the
// subsequent microblocks").
type PublicKey [PublicKeySize]byte

// Signature is a detached Ed25519 signature.
type Signature [SignatureSize]byte

// GenerateKey creates a key pair from the given entropy source. In
// simulations the source is the experiment's deterministic RNG; live nodes
// pass crypto/rand.Reader.
func GenerateKey(rand io.Reader) (*PrivateKey, error) {
	_, priv, err := ed25519.GenerateKey(rand)
	if err != nil {
		return nil, fmt.Errorf("crypto: generate key: %w", err)
	}
	return &PrivateKey{key: priv}, nil
}

// Public returns the matching public key.
func (p *PrivateKey) Public() PublicKey {
	var pub PublicKey
	copy(pub[:], p.key.Public().(ed25519.PublicKey))
	return pub
}

// Sign signs msg.
func (p *PrivateKey) Sign(msg []byte) Signature {
	var sig Signature
	copy(sig[:], ed25519.Sign(p.key, msg))
	return sig
}

// Verify reports whether sig is a valid signature of msg under pub.
func (pub PublicKey) Verify(msg []byte, sig Signature) bool {
	return ed25519.Verify(pub[:], msg, sig[:])
}

// Address is the short identifier funds are paid to: the double-SHA256 of a
// public key (an analogue of Bitcoin's pay-to-pubkey-hash).
type Address Hash

// Addr returns the address of the public key.
func (pub PublicKey) Addr() Address { return Address(HashBytes(pub[:])) }

// String abbreviates the address for logs.
func (a Address) String() string { return Hash(a).Short() }

// IsZero reports whether a is the zero address (burn / unset).
func (a Address) IsZero() bool { return Hash(a).IsZero() }
