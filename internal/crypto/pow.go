package crypto

import (
	"fmt"
	"math/big"
)

// CompactTarget is the 32-bit "nBits" representation of a 256-bit
// proof-of-work target, as used in Bitcoin block headers. The encoding is a
// base-256 floating point: the high byte is an exponent (digit count), the
// low 23 bits are the mantissa.
type CompactTarget uint32

// Difficulty-related errors.
var errNegativeTarget = fmt.Errorf("crypto: negative compact target")

var (
	bigOne = big.NewInt(1)
	// maxTarget is 2^256 - 1; work calculations divide by (target+1).
	maxTarget = new(big.Int).Sub(new(big.Int).Lsh(bigOne, 256), bigOne)
)

// EasiestTarget accepts every hash; useful for tests and the simulated miner
// where the scheduler, not the hash, decides block generation (§7 "Simulated
// Mining": regression-test mode skips difficulty validation).
const EasiestTarget CompactTarget = 0x227fffff

// Big expands the compact form to the full 256-bit target.
func (c CompactTarget) Big() *big.Int {
	mant := int64(c & 0x007fffff)
	exp := uint(c >> 24)
	if c&0x00800000 != 0 {
		mant = -mant // sign bit; never valid for targets but preserved
	}
	v := big.NewInt(mant)
	if exp <= 3 {
		return v.Rsh(v, 8*(3-exp))
	}
	return v.Lsh(v, 8*(exp-3))
}

// CompactFromBig compresses a 256-bit target into compact form, rounding the
// mantissa down as Bitcoin does.
func CompactFromBig(t *big.Int) CompactTarget {
	if t.Sign() < 0 {
		panic(errNegativeTarget)
	}
	bytes := uint((t.BitLen() + 7) / 8)
	var mant uint64
	if bytes <= 3 {
		mant = t.Uint64() << (8 * (3 - bytes))
	} else {
		mant = new(big.Int).Rsh(t, 8*(bytes-3)).Uint64()
	}
	// If the mantissa's top bit is set it would read as a sign bit; shift
	// one byte to clear it.
	if mant&0x00800000 != 0 {
		mant >>= 8
		bytes++
	}
	return CompactTarget(uint32(bytes)<<24 | uint32(mant))
}

// CheckProofOfWork reports whether hash, interpreted as a little-endian
// 256-bit integer (matching Bitcoin's convention for double-SHA256 digests),
// is at or below the target.
func CheckProofOfWork(hash Hash, target CompactTarget) bool {
	return hashToInt(hash).Cmp(target.Big()) <= 0
}

// WorkForTarget returns the expected number of hash evaluations needed to
// find a block at the given target: floor(2^256 / (target+1)). Chain weight
// is the sum of this quantity over the chain's proof-of-work blocks (§3
// "the winning chain is the heaviest one").
func WorkForTarget(target CompactTarget) *big.Int {
	t := target.Big()
	if t.Sign() <= 0 {
		return new(big.Int).Set(maxTarget)
	}
	denom := new(big.Int).Add(t, bigOne)
	work := new(big.Int).Div(new(big.Int).Lsh(bigOne, 256), denom)
	if work.Sign() == 0 {
		// Targets at or above 2^256 succeed on the first try.
		work.SetInt64(1)
	}
	return work
}

// hashToInt interprets a digest as a little-endian integer, per Bitcoin's
// "hash below target" comparison.
func hashToInt(h Hash) *big.Int {
	var be [32]byte
	for i := range h {
		be[31-i] = h[i]
	}
	return new(big.Int).SetBytes(be[:])
}

// Retarget computes a new compact target so that blocks arriving at
// observed intervals move toward the desired interval: the classic
// difficulty adjustment newTarget = oldTarget * actual / expected, clamped
// to a factor of 4 in either direction as Bitcoin does (§5.2 "Resilience to
// Mining Power Variation" discusses the consequences of this tuning).
func Retarget(old CompactTarget, actual, expected float64) CompactTarget {
	if expected <= 0 || actual <= 0 {
		return old
	}
	ratio := actual / expected
	if ratio > 4 {
		ratio = 4
	} else if ratio < 0.25 {
		ratio = 0.25
	}
	t := new(big.Float).SetInt(old.Big())
	t.Mul(t, big.NewFloat(ratio))
	next, _ := t.Int(nil)
	if next.Sign() <= 0 {
		next.SetInt64(1)
	}
	if next.Cmp(maxTarget) > 0 {
		next.Set(maxTarget)
	}
	return CompactFromBig(next)
}
