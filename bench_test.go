package bitcoinng

// Benchmark harness: one benchmark per evaluation figure/table of the paper
// (see DESIGN.md §3 for the experiment index), plus micro-benchmarks of the
// hot substrate paths. Figure benchmarks run laptop-scale sweeps and log the
// same rows/series the paper plots; `cmd/ngbench -nodes 1000 -blocks 100`
// runs the same drivers at paper scale.

import (
	"math"
	"strings"
	"testing"
	"time"

	"bitcoinng/internal/crypto"
	"bitcoinng/internal/experiment"
	"bitcoinng/internal/incentive"
	"bitcoinng/internal/load"
	"bitcoinng/internal/mempool"
	"bitcoinng/internal/mining"
	"bitcoinng/internal/sim"
	"bitcoinng/internal/simnet"
	"bitcoinng/internal/stats"
	"bitcoinng/internal/store"
	"bitcoinng/internal/types"
	"bitcoinng/internal/utxo"
	"bitcoinng/internal/wire"
)

// wireDecode round-trips a value through its serialization.
func wireDecode(in wire.Encoder, out wire.Decoder) error {
	return wire.Decode(wire.Encode(in), out)
}

// benchScale keeps `go test -bench=.` in tens of seconds; the shape of every
// curve survives the scale-down (DESIGN.md §3 notes the paper-scale
// comparison via cmd/ngbench).
func benchScale() Scale { return Scale{Nodes: 100, Blocks: 30, Seed: 1} }

// BenchmarkFigure6MiningPowerDistribution regenerates Figure 6: 52 weeks of
// ranked pool shares sampled from the exponential rank model, reduced to
// per-rank percentiles and re-fitted.
func BenchmarkFigure6MiningPowerDistribution(b *testing.B) {
	var exponent, r2 float64
	for i := 0; i < b.N; i++ {
		rng := sim.NewRand(1, 6)
		weeks := mining.SampleWeeks(rng, 52, 100, mining.DefaultExponent, 0.4)
		pct := mining.RankPercentiles(weeks, 20, []float64{0.25, 0.50, 0.75})
		var ranks, logMedians []float64
		for k := 0; k < 20; k++ {
			ranks = append(ranks, float64(k+1))
			logMedians = append(logMedians, math.Log(pct[1][k]))
		}
		fit := stats.LinearFit(ranks, logMedians)
		exponent, r2 = fit.Slope, fit.R2
	}
	b.ReportMetric(exponent, "exponent")
	b.ReportMetric(r2, "R2")
	b.Logf("Figure 6: fitted exponent %.4f (paper −0.27), R² %.4f (paper 0.99)", exponent, r2)
}

// BenchmarkFigure7PropagationVsSize regenerates Figure 7: Bitcoin block
// propagation percentiles across block sizes, with the linearity fit.
func BenchmarkFigure7PropagationVsSize(b *testing.B) {
	var out strings.Builder
	for i := 0; i < b.N; i++ {
		out.Reset()
		points, fit, err := experiment.Figure7(benchScale(), nil)
		if err != nil {
			b.Fatal(err)
		}
		experiment.FprintFig7(&out, points, fit)
		b.ReportMetric(fit.R2, "R2")
	}
	b.Log("\n" + out.String())
}

// BenchmarkFigure8aFrequencySweep regenerates Figure 8a: both protocols
// across block/microblock frequencies at constant payload throughput.
func BenchmarkFigure8aFrequencySweep(b *testing.B) {
	var out strings.Builder
	for i := 0; i < b.N; i++ {
		out.Reset()
		points, err := experiment.Figure8a(benchScale(), nil)
		if err != nil {
			b.Fatal(err)
		}
		experiment.FprintFig8(&out, "Figure 8a — frequency sweep", "freq[1/s]", points)
		last := points[len(points)-1]
		b.ReportMetric(last.Bitcoin.MiningPowerUtilization, "btc-mpu@1Hz")
		b.ReportMetric(last.NG.MiningPowerUtilization, "ng-mpu@1Hz")
	}
	b.Log("\n" + out.String())
}

// BenchmarkFigure8bSizeSweep regenerates Figure 8b: both protocols across
// block sizes at high frequency.
func BenchmarkFigure8bSizeSweep(b *testing.B) {
	var out strings.Builder
	for i := 0; i < b.N; i++ {
		out.Reset()
		points, err := experiment.Figure8b(benchScale(), nil)
		if err != nil {
			b.Fatal(err)
		}
		experiment.FprintFig8(&out, "Figure 8b — size sweep", "size[B]", points)
		last := points[len(points)-1]
		b.ReportMetric(last.Bitcoin.Fairness, "btc-fairness@80k")
		b.ReportMetric(last.NG.Fairness, "ng-fairness@80k")
	}
	b.Log("\n" + out.String())
}

// BenchmarkIncentiveBounds regenerates the §5.1 analysis: closed-form
// r_leader windows over an α grid plus a Monte-Carlo check at the paper's
// operating point.
func BenchmarkIncentiveBounds(b *testing.B) {
	var lo, hi float64
	for i := 0; i < b.N; i++ {
		rows := incentive.Table([]float64{0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 1.0 / 3.0})
		lo, hi = rows[4].Lower, rows[4].Upper
		rng := sim.NewRand(1, uint64(i))
		ev := incentive.InclusionAttackEV(rng, incentive.DefaultAlpha, 0.40, 200_000)
		if ev >= 0.40 {
			b.Fatalf("inclusion attack profitable at r=40%%: EV %.4f", ev)
		}
	}
	b.Logf("§5.1 at α=1/4: %.4f < r_leader < %.4f (paper: 0.37 < r < 0.43); 40%% compatible", lo, hi)
}

// BenchmarkAblationTieBreak compares the fork-choice tie rules (DESIGN.md §5).
func BenchmarkAblationTieBreak(b *testing.B) {
	var out strings.Builder
	for i := 0; i < b.N; i++ {
		out.Reset()
		random, firstSeen, err := experiment.TieBreakAblation(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		experiment.FprintReport(&out, "random", random)
		experiment.FprintReport(&out, "first-seen", firstSeen)
	}
	b.Log("\n" + out.String())
}

// BenchmarkAblationKeyBlockInterval sweeps NG's key-block interval
// (DESIGN.md §5, §5.2 of the paper).
func BenchmarkAblationKeyBlockInterval(b *testing.B) {
	var out strings.Builder
	for i := 0; i < b.N; i++ {
		out.Reset()
		points, err := experiment.KeyBlockIntervalAblation(benchScale(), nil)
		if err != nil {
			b.Fatal(err)
		}
		experiment.FprintFig8(&out, "Key block interval ablation", "keyint[s]", points)
	}
	b.Log("\n" + out.String())
}

// --- substrate micro-benchmarks ---

func benchKey(b *testing.B) *crypto.PrivateKey {
	b.Helper()
	key, err := crypto.GenerateKey(sim.NewRand(1, 1))
	if err != nil {
		b.Fatal(err)
	}
	return key
}

// BenchmarkTxEncodeDecode measures the wire codec on a workload-sized
// transaction.
func BenchmarkTxEncodeDecode(b *testing.B) {
	w, err := experiment.NewWorkload(1, 1, 476)
	if err != nil {
		b.Fatal(err)
	}
	tx := w.Txs[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var out types.Transaction
		if err := decodeTx(tx, &out); err != nil {
			b.Fatal(err)
		}
	}
}

func decodeTx(in *types.Transaction, out *types.Transaction) error {
	return wireDecode(in, out)
}

// BenchmarkMerkleRoot computes the root of a 2000-transaction block.
func BenchmarkMerkleRoot(b *testing.B) {
	leaves := make([]crypto.Hash, 2000)
	for i := range leaves {
		leaves[i] = crypto.HashBytes([]byte{byte(i), byte(i >> 8)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		crypto.MerkleRoot(leaves)
	}
}

// BenchmarkMicroblockVerify measures uncached microblock validation: the
// cost the paper estimated at "several milliseconds per microblock" and
// omitted from its prototype; this repository implements and measures it.
func BenchmarkMicroblockVerify(b *testing.B) {
	key := benchKey(b)
	w, err := experiment.NewWorkload(1, 40, 476)
	if err != nil {
		b.Fatal(err)
	}
	mb := &types.MicroBlock{
		Header: types.MicroBlockHeader{
			Prev:      crypto.HashBytes([]byte("k")),
			TxRoot:    crypto.MerkleRoot(types.TxIDs(w.Txs)),
			TimeNanos: 1,
		},
		Txs: w.Txs,
	}
	mb.Header.Sign(key)
	pub := key.Public()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Round-trip through the wire to defeat the validation cache,
		// measuring the real per-node cost.
		var fresh types.MicroBlock
		if err := wireDecode(mb, &fresh); err != nil {
			b.Fatal(err)
		}
		if err := fresh.CheckWellFormed(pub); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUTXOApplyBlock applies-and-undoes a 40-transaction block.
func BenchmarkUTXOApplyBlock(b *testing.B) {
	w, err := experiment.NewWorkload(1, 40, 476)
	if err != nil {
		b.Fatal(err)
	}
	set := utxo.New()
	ctx := utxo.BlockContext{Height: 0, Params: types.DefaultParams()}
	if _, _, err := set.ApplyBlock(w.Genesis.Txs, ctx); err != nil {
		b.Fatal(err)
	}
	ctx.Height = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		undo, _, err := set.ApplyBlock(w.Txs, ctx)
		if err != nil {
			b.Fatal(err)
		}
		set.UndoBlock(undo, utxo.BlockRef{})
	}
}

// BenchmarkSimnetBlockFlood measures the discrete-event network flooding one
// 20 kB block announcement through 200 nodes (inv/getdata/block).
func BenchmarkSimnetBlockFlood(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := DefaultExperiment(Bitcoin, 200, int64(i+1))
		cfg.TargetBlocks = 1
		cfg.Params.MaxBlockSize = 20_000
		cfg.Params.TargetBlockInterval = 10 * time.Second
		b.StartTimer()
		if _, err := RunExperiment(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterNGMinute advances a 50-node Bitcoin-NG cluster by one
// virtual minute (microblocks every 2 s).
func BenchmarkClusterNGMinute(b *testing.B) {
	params := DefaultParams()
	params.RetargetWindow = 0
	params.TargetBlockInterval = 20 * time.Second
	params.MicroblockInterval = 2 * time.Second
	c, err := New(50,
		WithParams(params),
		WithFunding(1000),
	)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Run(time.Minute)
	}
}

// BenchmarkLatencySample measures the latency histogram sampler.
func BenchmarkLatencySample(b *testing.B) {
	h := simnet.DefaultLatency()
	rng := sim.NewRand(1, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Sample(rng)
	}
}

// BenchmarkStreamSign measures the streaming workload generator: building
// and signing one lane-stride batch (64 transactions) on the shared
// validate pool, the per-batch cost the paced harness pays inside a run.
func BenchmarkStreamSign(b *testing.B) {
	s, err := load.NewStream(load.StreamConfig{Seed: 1, Lanes: 64, MaxTxs: int64(b.N+1) * 64})
	if err != nil {
		b.Fatal(err)
	}
	s.Bind(crypto.HashBytes([]byte("bench-funding")), 0)
	b.SetBytes(64 * 476)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.Tx(int64(i)*64) == nil {
			b.Fatal("generation stalled")
		}
	}
}

// BenchmarkMempoolChurn measures the fee-indexed bounded mempool under
// sustained churn: admissions into a full pool (evicting by fee rate) with
// periodic block-sized confirmations, the live blaster's hot path.
func BenchmarkMempoolChurn(b *testing.B) {
	s, err := load.NewStream(load.StreamConfig{Seed: 2, Lanes: 64, MaxTxs: int64(b.N) + 4096})
	if err != nil {
		b.Fatal(err)
	}
	s.Bind(crypto.HashBytes([]byte("bench-funding")), 0)
	p := mempool.New()
	p.SetLimits(mempool.Limits{MaxTxs: 2048})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := s.Tx(int64(i))
		if err := p.Add(tx); err != nil && err != mempool.ErrPoolFull {
			b.Fatal(err)
		}
		if i%1024 == 1023 {
			p.RemoveConfirmed(p.Select(1 << 20))
			s.Release(int64(i) - 2048)
		}
	}
}

// BenchmarkThroughputPoint measures one point of the sustained-load curve:
// a 10-node Bitcoin-NG network under 8 tx/s open-loop streaming load for
// ten virtual minutes, reporting measured goodput.
func BenchmarkThroughputPoint(b *testing.B) {
	var conf float64
	for i := 0; i < b.N; i++ {
		cfg := experiment.DefaultConfig(experiment.BitcoinNG, 10, int64(i+1))
		cfg.Offered = 8
		cfg.BandwidthBPS = 1_000_000
		cfg.TargetBlocks = 1 << 30
		cfg.MaxSimTime = 10 * time.Minute
		res, err := experiment.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		conf = res.Load.ConfirmedPerSec()
	}
	b.ReportMetric(conf, "conf/s")
}

// BenchmarkStoreBackendRun replays the same small Bitcoin-NG streaming run
// over each storage backend — the in-memory fast path vs the file-backed
// journal/paged-table engine — so the perf trajectory records what the
// beyond-RAM mode costs end to end (fsyncs, journal appends, page churn).
func BenchmarkStoreBackendRun(b *testing.B) {
	for _, backend := range []struct{ name, url string }{
		{"mem", ""},
		{"file", "file:"},
	} {
		b.Run(backend.name, func(b *testing.B) {
			var confirmed int64
			for i := 0; i < b.N; i++ {
				cfg := experiment.DefaultConfig(experiment.BitcoinNG, 8, 1)
				cfg.Offered = 50
				cfg.Params.MicroblockInterval = 2 * time.Second
				cfg.TargetBlocks = 1 << 30
				cfg.MaxSimTime = 5 * time.Minute
				cfg.StoreURL = backend.url
				res, err := experiment.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				confirmed = res.Load.Admitted
			}
			b.ReportMetric(float64(confirmed), "admitted-txs")
		})
	}
}

// BenchmarkUTXOStoreApply measures the raw ledger-store write path per
// backend: one coinbase block applied per iteration (journal append + paged
// writes on the file side, map stores on the mem side), with a Sync every
// 64 blocks to exercise the checkpoint cycle at a realistic cadence.
func BenchmarkUTXOStoreApply(b *testing.B) {
	run := func(b *testing.B, locator string) {
		factory, err := store.NewFactory(locator)
		if err != nil {
			b.Fatal(err)
		}
		defer factory.Close()
		u, err := factory.NewUTXO("bench")
		if err != nil {
			b.Fatal(err)
		}
		defer u.Close()
		key, err := crypto.GenerateKey(sim.NewRand(1, 99))
		if err != nil {
			b.Fatal(err)
		}
		params := types.DefaultParams()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			outs := make([]types.TxOutput, 8)
			for j := range outs {
				outs[j] = types.TxOutput{Value: types.Amount(1000 + i), To: key.Public().Addr()}
			}
			// The varying output value makes every coinbase ID unique.
			cb := &types.Transaction{Kind: types.TxCoinbase, Outputs: outs}
			ref := utxo.BlockRef{Block: crypto.HashBytes([]byte{byte(i), byte(i >> 8), byte(i >> 16), byte(i >> 24)}), Parent: crypto.ZeroHash}
			ctx := utxo.BlockContext{Height: uint64(i), Params: params, Ref: ref}
			if _, _, err := u.ApplyBlock([]*types.Transaction{cb}, ctx); err != nil {
				b.Fatal(err)
			}
			if i%64 == 63 {
				if err := u.Sync(); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StopTimer()
		st := u.Stats()
		b.ReportMetric(float64(st.JournalRecords)/float64(b.N), "journal-recs/op")
	}
	b.Run("mem", func(b *testing.B) { run(b, "") })
	b.Run("file", func(b *testing.B) { run(b, "file:"+b.TempDir()) })
}
