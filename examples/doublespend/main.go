// Doublespend: the §4.5 attack and its punishment, scripted as a Scenario.
// A malicious Bitcoin-NG leader signs two conflicting microblocks — paying
// two different merchants with the same coins — and publishes them to
// different parts of the network. Honest nodes detect the equivocation, and
// once one of them wins leadership it places a poison transaction: the
// cheater's key-block revenue is revoked and the poisoner collects 5%.
//
//	go run ./examples/doublespend
package main

import (
	"fmt"
	"log"
	"time"

	"bitcoinng"
)

func main() {
	params := bitcoinng.DefaultParams()
	params.RetargetWindow = 0
	params.TargetBlockInterval = 30 * time.Second
	params.MicroblockInterval = 3 * time.Second

	cluster, err := bitcoinng.New(8,
		bitcoinng.WithSeed(7),
		bitcoinng.WithParams(params),
		bitcoinng.WithFunding(100_000),
		bitcoinng.WithAutoMine(false), // we script who mines when
	)
	if err != nil {
		log.Fatal(err)
	}
	attacker := cluster.Node(0)
	honest := cluster.Node(1)

	// Build two payments spending the SAME genesis coins to different
	// merchants: the double spend, signed but not yet published.
	merchantA := bitcoinng.Address{0xaa}
	merchantB := bitcoinng.Address{0xbb}
	w := attacker.Wallet()
	txA, err := w.Pay(attacker.Chain(), merchantA, 90_000, 100)
	if err != nil {
		log.Fatal(err)
	}
	txB, err := w.Pay(attacker.Chain(), merchantB, 90_000, 100)
	if err != nil {
		log.Fatal(err)
	}

	// The whole attack is one composable script against the event loop.
	var attackerBalanceBefore bitcoinng.Amount
	attack := bitcoinng.NewScenario(
		bitcoinng.At(0, bitcoinng.Call("attacker wins the first key block",
			func(bitcoinng.ScenarioRuntime) error {
				attacker.MineBlock()
				return nil
			})),
		// Split-brain at t=5s: one microblock per merchant, sent to
		// different peers.
		bitcoinng.At(5*time.Second, bitcoinng.Equivocate(0, txA, txB)),
		bitcoinng.At(15*time.Second, bitcoinng.Call("honest node wins the next key block",
			func(bitcoinng.ScenarioRuntime) error {
				attackerBalanceBefore = honest.Balance(attacker.Address())
				honest.MineBlock()
				return nil
			})),
	)
	if err := cluster.Play(attack); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attacker (node 0) led and signed conflicting microblocks\n")

	count := 0
	for i := 1; i < cluster.Size(); i++ {
		if cluster.Node(i).FraudsDetected() > 0 {
			count++
		}
	}
	fmt.Printf("honest nodes with fraud evidence: %d of %d\n", count, cluster.Size()-1)

	// Let the new leader place the poison in its first microblocks.
	cluster.Run(30 * time.Second)

	attackerBalanceAfter := honest.Balance(attacker.Address())
	fmt.Println()
	fmt.Printf("attacker balance before poison: %d\n", attackerBalanceBefore)
	fmt.Printf("attacker balance after poison:  %d (key-block revenue revoked)\n", attackerBalanceAfter)
	fmt.Printf("poisoner reward collected:      %d (5%% of the revoked revenue)\n",
		honest.Balance(honest.Address())-params.Subsidy) // minus its own key block subsidy
	fmt.Println()
	fmt.Println("only one of the two payments survives on the main chain:")
	fmt.Printf("  merchant A received: %d\n", honest.Balance(merchantA))
	fmt.Printf("  merchant B received: %d\n", honest.Balance(merchantB))
}
