// Doublespend: the §4.5 attack and its punishment. A malicious Bitcoin-NG
// leader signs two conflicting microblocks — paying two different merchants
// with the same coins — and publishes them to different parts of the
// network. Honest nodes detect the equivocation, and once one of them wins
// leadership it places a poison transaction: the cheater's key-block revenue
// is revoked and the poisoner collects 5%.
//
//	go run ./examples/doublespend
package main

import (
	"fmt"
	"log"
	"time"

	"bitcoinng"
)

func main() {
	params := bitcoinng.DefaultParams()
	params.RetargetWindow = 0
	params.TargetBlockInterval = 30 * time.Second
	params.MicroblockInterval = 3 * time.Second

	cluster, err := bitcoinng.NewCluster(bitcoinng.ClusterConfig{
		Protocol:    bitcoinng.BitcoinNG,
		Nodes:       8,
		Seed:        7,
		Params:      params,
		FundPerNode: 100_000,
		AutoMine:    false, // we script who mines when
	})
	if err != nil {
		log.Fatal(err)
	}
	attacker := cluster.Node(0)
	honest := cluster.Node(1)

	// The attacker wins the first key block and leads.
	attacker.MineBlock()
	cluster.Run(5 * time.Second)
	fmt.Printf("attacker (node 0) leads: %v\n", attacker.IsLeader())

	// Build two payments spending the SAME coins to different merchants.
	merchantA := bitcoinng.Address{0xaa}
	merchantB := bitcoinng.Address{0xbb}
	w := attacker.Wallet()
	txA, err := w.Pay(attacker.Chain(), merchantA, 90_000, 100)
	if err != nil {
		log.Fatal(err)
	}
	txB, err := w.Pay(attacker.Chain(), merchantB, 90_000, 100)
	if err != nil {
		log.Fatal(err)
	}

	// Split-brain: one microblock per merchant, sent to different peers.
	hashA, hashB, err := cluster.EquivocateLeader(0, txA, txB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("leader signed conflicting microblocks %s and %s\n",
		hashA.Short(), hashB.Short())

	cluster.Run(10 * time.Second)
	fmt.Printf("honest nodes with fraud evidence: ")
	count := 0
	for i := 1; i < cluster.Size(); i++ {
		if cluster.Node(i).FraudsDetected() > 0 {
			count++
		}
	}
	fmt.Printf("%d of %d\n", count, cluster.Size()-1)

	attackerBalanceBefore := honest.Balance(attacker.Address())

	// An honest node wins the next key block and, as the new leader,
	// places the poison in its first microblock.
	honest.MineBlock()
	cluster.Run(30 * time.Second)

	attackerBalanceAfter := honest.Balance(attacker.Address())
	fmt.Println()
	fmt.Printf("attacker balance before poison: %d\n", attackerBalanceBefore)
	fmt.Printf("attacker balance after poison:  %d (key-block revenue revoked)\n", attackerBalanceAfter)
	fmt.Printf("poisoner reward collected:      %d (5%% of the revoked revenue)\n",
		honest.Balance(honest.Address())-params.Subsidy) // minus its own key block subsidy
	fmt.Println()
	fmt.Println("only one of the two payments survives on the main chain:")
	fmt.Printf("  merchant A received: %d\n", honest.Balance(merchantA))
	fmt.Printf("  merchant B received: %d\n", honest.Balance(merchantB))
}
