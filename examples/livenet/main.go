// Livenet: the same Bitcoin-NG protocol code that the simulator runs, on
// real TCP sockets. Four nodes listen on loopback ports, peer up in a ring,
// node 1 mines a real proof-of-work key block at trivial difficulty, leads,
// and streams microblocks that every node follows live.
//
//	go run ./examples/livenet
package main

import (
	"fmt"
	"log"
	"time"

	"bitcoinng/internal/core"
	"bitcoinng/internal/crypto"
	"bitcoinng/internal/node"
	"bitcoinng/internal/p2p"
	"bitcoinng/internal/sim"
	"bitcoinng/internal/types"
)

func main() {
	genesis := types.GenesisBlock(types.GenesisSpec{Target: crypto.EasiestTarget})
	params := types.DefaultParams()
	params.RetargetWindow = 0
	params.MicroblockInterval = 200 * time.Millisecond
	params.MinMicroblockInterval = 10 * time.Millisecond

	const n = 4
	runtimes := make([]*p2p.Runtime, n)
	nodes := make([]*core.Node, n)
	addrs := make([]string, n)

	for i := 0; i < n; i++ {
		key, err := crypto.GenerateKey(sim.NewRand(int64(i), 7))
		if err != nil {
			log.Fatal(err)
		}
		rt := p2p.New(p2p.Config{NodeID: i + 1, GenesisHash: genesis.Hash(), Seed: int64(i)})
		defer rt.Close()
		ng, err := core.New(rt, core.Config{
			Params:  params,
			Key:     key,
			Genesis: genesis,
		})
		if err != nil {
			log.Fatal(err)
		}
		rt.SetHandler(func(from int, msg node.Message) { ng.HandleMessage(from, msg) })
		addr, err := rt.Listen("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		runtimes[i], nodes[i], addrs[i] = rt, ng, addr.String()
		fmt.Printf("node %d listening on %s\n", i+1, addrs[i])
	}

	// Ring topology over real sockets.
	for i := 0; i < n; i++ {
		if err := runtimes[i].Connect(addrs[(i+1)%n]); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("ring connected; node 1 mining a real proof-of-work key block...")

	// Real mining: grind nonces until the header hash meets the target.
	runtimes[0].Do(func() {
		blk := nodes[0].AssembleKeyBlock()
		var tries uint64
		for nonce := uint64(0); ; nonce++ {
			blk.Header.Nonce = nonce
			tries++
			if crypto.CheckProofOfWork(blk.Header.Hash(), blk.Header.Target) {
				break
			}
		}
		nodes[0].SubmitOwnBlock(blk)
		fmt.Printf("node 1 mined key block %s after %d hashes\n", blk.Hash().Short(), tries)
	})

	// Let the leader stream microblocks over TCP for two wall-clock seconds.
	time.Sleep(2 * time.Second) //nglint:allow walltime live TCP demo deliberately runs on the wall clock

	fmt.Println()
	for i := 0; i < n; i++ {
		rt, ng := runtimes[i], nodes[i]
		rt.Do(func() {
			tip := ng.State.Tip()
			fmt.Printf("node %d: height=%d keyheight=%d tip=%s leader=%v\n",
				i+1, tip.Height, tip.KeyHeight, tip.Hash().Short(), ng.IsLeader())
		})
	}
	fmt.Println()
	fmt.Println("all nodes converged on the leader's microblock chain over live TCP.")
}
