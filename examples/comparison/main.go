// Comparison: the paper's headline experiment in miniature — Bitcoin and
// Bitcoin-NG on identical emulated networks at increasing block frequency,
// §6 metrics side by side (§8.1). Watch Bitcoin's mining power utilization
// and fairness collapse while Bitcoin-NG holds both near optimal.
//
//	go run ./examples/comparison
package main

import (
	"fmt"
	"log"
	"time"

	"bitcoinng"
)

func main() {
	fmt.Println("Bitcoin vs Bitcoin-NG: frequency sweep at constant payload throughput")
	fmt.Println("(80 nodes, 30 payload blocks per run — shapes match the paper's Figure 8a)")
	fmt.Println()
	fmt.Printf("%10s %-11s %13s %9s %7s %7s\n",
		"freq", "protocol", "consensus[s]", "fairness", "mpu", "tx/s")

	for _, freq := range []float64{0.05, 0.2, 1.0} {
		interval := time.Duration(float64(time.Second) / freq)
		size := int(bitcoinng.DefaultParams().MaxBlockSize) // placeholder, set below
		size = int(1_000_000.0 / 600.0 / freq)              // constant payload rate

		btc := bitcoinng.DefaultExperiment(bitcoinng.Bitcoin, 80, 1)
		btc.TargetBlocks = 30
		btc.Params.MaxBlockSize = size
		btc.Params.TargetBlockInterval = interval
		bres, err := bitcoinng.RunExperiment(btc)
		if err != nil {
			log.Fatal(err)
		}

		ng := bitcoinng.DefaultExperiment(bitcoinng.BitcoinNG, 80, 1)
		ng.TargetBlocks = 30
		ng.Params.MaxBlockSize = size
		ng.Params.TargetBlockInterval = 100 * time.Second // key blocks
		ng.Params.MicroblockInterval = interval
		nres, err := bitcoinng.RunExperiment(ng)
		if err != nil {
			log.Fatal(err)
		}

		for _, row := range []struct {
			name string
			r    *bitcoinng.Report
		}{{"bitcoin", bres.Report}, {"bitcoin-ng", nres.Report}} {
			fmt.Printf("%9.2f/s %-11s %13.2f %9.3f %7.3f %7.2f\n",
				freq, row.name,
				row.r.ConsensusDelay.Seconds(), row.r.Fairness,
				row.r.MiningPowerUtilization, row.r.TxFrequency)
		}
	}

	fmt.Println()
	fmt.Println("Bitcoin's block frequency is bounded by fork loss; Bitcoin-NG confines")
	fmt.Println("contention to rare key blocks and serializes in weightless microblocks.")
}
