// Censorship: §5.2 "Censorship Resistance". A leader that refuses to
// serialize transactions (publishing empty microblocks) freezes the ledger
// only while it leads — its influence ends with the next honest key block,
// unlike a Bitcoin miner cartel that censors every block it wins.
//
//	go run ./examples/censorship
package main

import (
	"fmt"
	"log"
	"time"

	"bitcoinng"
)

func main() {
	params := bitcoinng.DefaultParams()
	params.RetargetWindow = 0
	params.TargetBlockInterval = 20 * time.Second
	params.MicroblockInterval = 2 * time.Second

	cluster, err := bitcoinng.New(6,
		bitcoinng.WithSeed(13),
		bitcoinng.WithParams(params),
		bitcoinng.WithFunding(10_000),
		bitcoinng.WithAutoMine(false), // we script who leads
		bitcoinng.WithCensors(0),      // node 0 publishes empty microblocks
	)
	if err != nil {
		log.Fatal(err)
	}

	// A payment everyone's pool holds (clusters do not relay, §7).
	dest := bitcoinng.Address{0xce}
	tx, err := cluster.Node(1).Pay(dest, 2_500, 100)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < cluster.Size(); i++ {
		if i != 1 {
			if err := cluster.Node(i).SubmitTx(tx); err != nil {
				log.Fatal(err)
			}
		}
	}

	fmt.Println("the censor (node 0) wins the key block and leads")
	cluster.Node(0).MineBlock()
	cluster.Run(30 * time.Second)
	fmt.Printf("  after 30s of censoring leadership: %d microblocks, payment confirmed: %v\n",
		cluster.Node(0).MicroblocksMined(), cluster.Node(1).Balance(dest) > 0)

	fmt.Println("an honest node (node 1) wins the next key block")
	cluster.Node(1).MineBlock()
	cluster.Run(30 * time.Second)
	fmt.Printf("  payment confirmed: %v (dest balance %d)\n",
		cluster.Node(1).Balance(dest) > 0, cluster.Node(1).Balance(dest))

	fmt.Println()
	fmt.Println("Censorship under Bitcoin-NG lasts one epoch: the §5.2 argument for")
	fmt.Println("frequent key blocks.")
}
