// Quickstart: spin up an in-process Bitcoin-NG network on the emulated
// internet, let it mine, and watch leader election and microblock
// serialization happen.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"bitcoinng"
)

func main() {
	params := bitcoinng.DefaultParams()
	params.RetargetWindow = 0                     // fixed difficulty demo
	params.TargetBlockInterval = 30 * time.Second // key blocks
	params.MicroblockInterval = 5 * time.Second   // ledger entries

	cluster, err := bitcoinng.New(20,
		bitcoinng.WithSeed(42),
		bitcoinng.WithParams(params),
		bitcoinng.WithFunding(1_000_000),
		// AutoMine defaults on: mining power follows the paper's Figure 6
		// model.
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Bitcoin-NG quickstart: 20 nodes, 30s key blocks, 5s microblocks")
	fmt.Println()
	for minute := 1; minute <= 5; minute++ {
		cluster.Run(time.Minute)
		n := cluster.Node(0)
		leader := "none visible"
		for i := 0; i < cluster.Size(); i++ {
			if cluster.Node(i).IsLeader() {
				leader = fmt.Sprintf("node %d", i)
				break
			}
		}
		fmt.Printf("t=%-4v height=%-4d keyblocks=%-3d leader=%-9s converged=%v\n",
			cluster.Now().Round(time.Second), n.Height(), n.KeyHeight(), leader, cluster.Converged())
	}

	fmt.Println()
	r := cluster.Report()
	fmt.Printf("after 5 minutes: %d blocks generated (%d key blocks, %d microblocks)\n",
		r.Blocks, r.PowBlocks, r.Blocks-r.PowBlocks)
	fmt.Printf("consensus delay (90%%,90%%): %v\n", r.ConsensusDelay.Round(10*time.Millisecond))
	fmt.Printf("mining power utilization:   %.3f (microblocks carry no weight — §4.2)\n",
		r.MiningPowerUtilization)
	fmt.Printf("fairness:                   %.3f\n", r.Fairness)
}
