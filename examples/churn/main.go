// Churn: §5.2 "Resilience to Mining Power Variation". When most mining
// power suddenly leaves (miners chase a more profitable coin), Bitcoin-style
// chains stall entirely until difficulty retargets. In Bitcoin-NG only key
// blocks stall: the incumbent leader keeps serializing transactions in
// microblocks at an unchanged rate.
//
//	go run ./examples/churn
package main

import (
	"fmt"
	"log"
	"time"

	"bitcoinng"
)

func main() {
	params := bitcoinng.DefaultParams()
	params.RetargetWindow = 0
	params.TargetBlockInterval = 20 * time.Second
	params.MicroblockInterval = 2 * time.Second

	cluster, err := bitcoinng.NewCluster(bitcoinng.ClusterConfig{
		Protocol:    bitcoinng.BitcoinNG,
		Nodes:       12,
		Seed:        3,
		Params:      params,
		FundPerNode: 1_000_000,
		AutoMine:    true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("phase 1: healthy network (20s key blocks, 2s microblocks)")
	cluster.Run(2 * time.Minute)
	h1, k1 := cluster.Node(0).Height(), cluster.Node(0).KeyHeight()
	fmt.Printf("  after 2min: %d blocks, %d key blocks\n\n", h1, k1)

	fmt.Println("phase 2: 99% of mining power leaves (difficulty not yet retargeted)")
	for i := 0; i < cluster.Size(); i++ {
		cluster.Node(i).SetMiningRate(0.0005) // key blocks now ~hours apart
	}
	cluster.Run(2 * time.Minute)
	h2, k2 := cluster.Node(0).Height(), cluster.Node(0).KeyHeight()
	fmt.Printf("  after 2min: +%d blocks, +%d key blocks\n", h2-h1, k2-k1)
	fmt.Printf("  key blocks stalled, but the leader kept serializing: %d microblocks\n\n",
		(h2-h1)-(k2-k1))

	fmt.Println("phase 3: miners return")
	for i := 0; i < cluster.Size(); i++ {
		cluster.Node(i).SetMiningRate(0.05 / float64(cluster.Size()))
	}
	cluster.Run(2 * time.Minute)
	h3, k3 := cluster.Node(0).Height(), cluster.Node(0).KeyHeight()
	fmt.Printf("  after 2min: +%d blocks, +%d key blocks\n\n", h3-h2, k3-k2)

	fmt.Println("In a Bitcoin-style chain phase 2 would freeze the ledger completely;")
	fmt.Println("in Bitcoin-NG transaction processing continued at the microblock rate (§5.2).")
}
