// Churn: §5.2 "Resilience to Mining Power Variation", scripted as a
// Scenario. When most mining power suddenly leaves (miners chase a more
// profitable coin), Bitcoin-style chains stall entirely until difficulty
// retargets. In Bitcoin-NG only key blocks stall: the incumbent leader
// keeps serializing transactions in microblocks at an unchanged rate.
//
//	go run ./examples/churn
package main

import (
	"fmt"
	"log"
	"time"

	"bitcoinng"
)

func main() {
	params := bitcoinng.DefaultParams()
	params.RetargetWindow = 0
	params.TargetBlockInterval = 20 * time.Second
	params.MicroblockInterval = 2 * time.Second

	const nodes = 12

	// Phase boundaries, recorded by Call steps as the script executes.
	var h1, k1, h2, k2 uint64

	var cluster *bitcoinng.Cluster
	script := bitcoinng.NewScenario(
		bitcoinng.At(2*time.Minute, bitcoinng.Call("record healthy phase",
			func(bitcoinng.ScenarioRuntime) error {
				h1, k1 = cluster.Node(0).Height(), cluster.Node(0).KeyHeight()
				return nil
			})),
		// 99% of mining power leaves; difficulty not yet retargeted.
		bitcoinng.At(2*time.Minute, bitcoinng.ChurnAll(0.0005)),
		bitcoinng.At(4*time.Minute, bitcoinng.Call("record churn phase",
			func(bitcoinng.ScenarioRuntime) error {
				h2, k2 = cluster.Node(0).Height(), cluster.Node(0).KeyHeight()
				return nil
			})),
		// Miners return.
		bitcoinng.At(4*time.Minute, bitcoinng.ChurnAll(0.05/nodes)),
	)

	cluster, err := bitcoinng.New(nodes,
		bitcoinng.WithSeed(3),
		bitcoinng.WithParams(params),
		bitcoinng.WithFunding(1_000_000),
		bitcoinng.WithScenario(script),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("phase 1: healthy network (20s key blocks, 2s microblocks)")
	fmt.Println("phase 2 at t=2min: 99% of mining power leaves")
	fmt.Println("phase 3 at t=4min: miners return")
	fmt.Println()
	cluster.Run(6 * time.Minute)

	h3, k3 := cluster.Node(0).Height(), cluster.Node(0).KeyHeight()
	fmt.Printf("phase 1: %d blocks, %d key blocks\n", h1, k1)
	fmt.Printf("phase 2: +%d blocks, +%d key blocks\n", h2-h1, k2-k1)
	fmt.Printf("  key blocks stalled, but the leader kept serializing: %d microblocks\n",
		(h2-h1)-(k2-k1))
	fmt.Printf("phase 3: +%d blocks, +%d key blocks\n", h3-h2, k3-k2)
	fmt.Println()
	fmt.Println("In a Bitcoin-style chain phase 2 would freeze the ledger completely;")
	fmt.Println("in Bitcoin-NG transaction processing continued at the microblock rate (§5.2).")
}
