package bitcoinng

import (
	"fmt"
	"time"

	"bitcoinng/internal/bitcoin"
	"bitcoinng/internal/chain"
	"bitcoinng/internal/core"
	"bitcoinng/internal/crypto"
	"bitcoinng/internal/ghost"
	"bitcoinng/internal/metrics"
	"bitcoinng/internal/mining"
	"bitcoinng/internal/node"
	"bitcoinng/internal/sim"
	"bitcoinng/internal/simnet"
	"bitcoinng/internal/types"
	"bitcoinng/internal/wallet"
)

// ClusterConfig describes an interactive in-process network.
type ClusterConfig struct {
	// Protocol selects the client implementation; default BitcoinNG.
	Protocol Protocol
	// Nodes is the network size (≥ 2).
	Nodes int
	// Seed makes the cluster deterministic.
	Seed int64
	// Params are the consensus parameters; zero value takes DefaultParams.
	Params Params
	// FundPerNode pre-funds every node's wallet with this amount from
	// genesis (spendable immediately).
	FundPerNode Amount
	// AutoMine attaches simulated miners with power following the paper's
	// exponential rank distribution; without it, call Node(i).MineBlock /
	// MineKeyBlock manually.
	AutoMine bool
}

// Cluster is an interactive emulated network. All methods must be called
// from one goroutine; time only advances inside Run/RunUntil.
type Cluster struct {
	cfg       ClusterConfig
	loop      *sim.Loop
	net       *simnet.Network
	collector *metrics.Collector
	nodes     []*ClusterNode
	genesis   *types.PowBlock
}

// ClusterNode is one node handle.
type ClusterNode struct {
	id     int
	base   *node.Base
	ng     *core.Node    // nil unless BitcoinNG
	btc    *bitcoin.Node // nil for BitcoinNG
	miner  *mining.Miner
	wallet *wallet.Wallet
}

// NewCluster builds the network, funds wallets, and (with AutoMine) arms
// miners. Nothing runs until Run is called.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("bitcoinng: cluster needs at least 2 nodes")
	}
	if cfg.Protocol == "" {
		cfg.Protocol = BitcoinNG
	}
	if cfg.Params == (Params{}) {
		cfg.Params = DefaultParams()
		cfg.Params.RetargetWindow = 0
	}
	loop := sim.NewLoop(0)
	network := simnet.New(loop, simnet.DefaultConfig(cfg.Nodes, cfg.Seed))

	// Node keys and pre-funded genesis.
	keys := make([]*crypto.PrivateKey, cfg.Nodes)
	var payouts []types.TxOutput
	for i := range keys {
		k, err := crypto.GenerateKey(sim.NewRand(cfg.Seed, uint64(0x30000+i)))
		if err != nil {
			return nil, err
		}
		keys[i] = k
		if cfg.FundPerNode > 0 {
			payouts = append(payouts, types.TxOutput{Value: cfg.FundPerNode, To: k.Public().Addr()})
		}
	}
	genesis := types.GenesisBlock(types.GenesisSpec{
		Target:  crypto.EasiestTarget,
		Payouts: payouts,
	})
	collector := metrics.NewCollector(genesis, 0)

	c := &Cluster{
		cfg:       cfg,
		loop:      loop,
		net:       network,
		collector: collector,
		genesis:   genesis,
	}
	shares := mining.ExponentialShares(cfg.Nodes, mining.DefaultExponent)
	totalRate := 1.0 / cfg.Params.TargetBlockInterval.Seconds()

	for i := 0; i < cfg.Nodes; i++ {
		env := simnet.NewNodeEnv(loop, network, i, cfg.Seed)
		cn := &ClusterNode{id: i, wallet: wallet.New(keys[i])}
		var onFind func()
		switch cfg.Protocol {
		case BitcoinNG:
			n, err := core.New(env, core.Config{
				Params:          cfg.Params,
				Key:             keys[i],
				Genesis:         genesis,
				Recorder:        collector,
				SimulatedMining: true,
			})
			if err != nil {
				return nil, err
			}
			cn.ng, cn.base = n, n.Base
			onFind = func() { n.MineKeyBlock() }
			env.Deliver(n.HandleMessage)
		case Bitcoin, GHOST:
			bcfg := bitcoin.Config{
				Params:          cfg.Params,
				Key:             keys[i],
				Genesis:         genesis,
				Recorder:        collector,
				SimulatedMining: true,
			}
			var n *bitcoin.Node
			var err error
			if cfg.Protocol == GHOST {
				n, err = ghost.New(env, bcfg)
			} else {
				n, err = bitcoin.New(env, bcfg)
			}
			if err != nil {
				return nil, err
			}
			cn.btc, cn.base = n, n.Base
			onFind = func() { n.MineBlock() }
			env.Deliver(n.HandleMessage)
		default:
			return nil, fmt.Errorf("bitcoinng: unknown protocol %q", cfg.Protocol)
		}
		cn.miner = mining.NewMiner(loop, sim.NewRand(cfg.Seed, uint64(0x40000+i)), onFind)
		if cfg.AutoMine {
			cn.miner.SetRate(shares[i] * totalRate)
			cn.miner.Start()
		}
		c.nodes = append(c.nodes, cn)
	}
	return c, nil
}

// Run advances virtual time by d, processing everything scheduled within it.
func (c *Cluster) Run(d time.Duration) { c.loop.RunFor(d) }

// Partition cuts the network into the given groups of node indices; nodes
// not listed join group 0. Messages across groups are lost until Heal.
func (c *Cluster) Partition(groups ...[]int) {
	assignment := make([]int, len(c.nodes))
	for g, members := range groups {
		for _, id := range members {
			assignment[id] = g + 1
		}
	}
	c.net.SetPartition(assignment)
}

// Heal removes the partition; chains reconcile as the next blocks announce.
func (c *Cluster) Heal() { c.net.SetPartition(nil) }

// Now returns the current virtual time.
func (c *Cluster) Now() time.Duration { return time.Duration(c.loop.Now()) }

// Size returns the number of nodes.
func (c *Cluster) Size() int { return len(c.nodes) }

// Node returns the i'th node handle.
func (c *Cluster) Node(i int) *ClusterNode { return c.nodes[i] }

// Report computes the §6 metrics for everything observed so far.
func (c *Cluster) Report() *Report {
	return c.collector.Analyze(metrics.DefaultAnalyzeOptions(c.loop.Now()))
}

// Converged reports whether every node's tip lies on one chain: under
// Bitcoin-NG a leader always has microblocks in flight, so agreement means
// every tip is an ancestor of (or equal to) the farthest tip, not that all
// tips are identical.
func (c *Cluster) Converged() bool {
	// Find the highest tip and verify the others sit on its chain.
	best := c.nodes[0]
	for _, n := range c.nodes[1:] {
		if n.base.State.Tip().Height > best.base.State.Tip().Height {
			best = n
		}
	}
	bestState := best.base.State
	for _, n := range c.nodes {
		tipNode, ok := bestState.Store().Get(n.base.State.Tip().Hash())
		if !ok || !bestState.MainChainContains(tipNode) {
			return false
		}
	}
	return true
}

// ID returns the node's index.
func (n *ClusterNode) ID() int { return n.id }

// Wallet returns the node's wallet.
func (n *ClusterNode) Wallet() *wallet.Wallet { return n.wallet }

// Address returns the node's reward/wallet address.
func (n *ClusterNode) Address() Address { return n.wallet.Address() }

// Chain returns the node's chain state (read-only use).
func (n *ClusterNode) Chain() *chain.State { return n.base.State }

// Height returns the node's main-chain height (all blocks).
func (n *ClusterNode) Height() uint64 { return n.base.State.Height() }

// KeyHeight returns the node's PoW/key-block height.
func (n *ClusterNode) KeyHeight() uint64 { return n.base.State.KeyHeight() }

// TipID returns the node's main-chain tip hash.
func (n *ClusterNode) TipID() Hash { return n.base.State.Tip().Hash() }

// Balance returns addr's spendable balance in this node's view.
func (n *ClusterNode) Balance(addr Address) Amount {
	return n.base.State.UTXO().BalanceOf(addr)
}

// Pay builds, signs, and submits a payment from this node's wallet to the
// node's local pool (experiment clusters do not relay transactions; every
// node that should serialize it must receive it via SubmitTx).
func (n *ClusterNode) Pay(to Address, amount, fee Amount) (*Transaction, error) {
	tx, err := n.wallet.Pay(n.base.State, to, amount, fee)
	if err != nil {
		return nil, err
	}
	if err := n.base.SubmitTx(tx); err != nil {
		return nil, err
	}
	return tx, nil
}

// SubmitTx adds an externally built transaction to this node's pool.
func (n *ClusterNode) SubmitTx(tx *Transaction) error { return n.base.SubmitTx(tx) }

// IsLeader reports whether this node currently leads (Bitcoin-NG only).
func (n *ClusterNode) IsLeader() bool {
	return n.ng != nil && n.ng.IsLeader()
}

// MineBlock forces one block find now: a key block under Bitcoin-NG, a
// regular block otherwise.
func (n *ClusterNode) MineBlock() {
	if n.ng != nil {
		n.ng.MineKeyBlock()
		return
	}
	n.btc.MineBlock()
}

// SetMiningRate adjusts the node's simulated mining power (blocks/sec) and
// starts the miner; zero pauses it — the churn experiments use this (§5.2).
func (n *ClusterNode) SetMiningRate(blocksPerSec float64) {
	n.miner.SetRate(blocksPerSec)
	n.miner.Start()
}

// MicroblocksMined returns the node's microblock production count
// (Bitcoin-NG only; zero otherwise).
func (n *ClusterNode) MicroblocksMined() uint64 {
	if n.ng == nil {
		return 0
	}
	return n.ng.MicroblocksMined()
}

// FraudsDetected returns how many leader equivocations this Bitcoin-NG node
// has witnessed and holds poison evidence for (§4.5).
func (n *ClusterNode) FraudsDetected() int {
	if n.ng == nil {
		return 0
	}
	return len(n.ng.KnownFrauds())
}

// EquivocateLeader makes the given Bitcoin-NG node — which must currently
// lead — sign two conflicting microblocks on its tip, each carrying one of
// the transactions, and publish them to different peers: the split-brain
// double-spend of §4.5. It returns the two microblock hashes. Honest nodes
// that see both detect the fraud and poison the leader once they lead.
func (c *Cluster) EquivocateLeader(leaderID int, txA, txB *Transaction) (Hash, Hash, error) {
	ln := c.nodes[leaderID]
	if ln.ng == nil || !ln.ng.IsLeader() {
		return Hash{}, Hash{}, fmt.Errorf("bitcoinng: node %d is not the current leader", leaderID)
	}
	tip := ln.base.State.Tip()
	now := c.loop.Now()
	minGap := int64(c.cfg.Params.MinMicroblockInterval)
	build := func(tx *Transaction, extraNanos int64) *types.MicroBlock {
		var txs []*types.Transaction
		if tx != nil {
			txs = []*types.Transaction{tx}
		}
		mb := &types.MicroBlock{
			Header: types.MicroBlockHeader{
				Prev:      tip.Hash(),
				TxRoot:    crypto.MerkleRoot(types.TxIDs(txs)),
				TimeNanos: now + minGap + extraNanos,
			},
			Txs: txs,
		}
		mb.Header.Sign(ln.wallet.Key())
		return mb
	}
	mbA := build(txA, 0)
	mbB := build(txB, 1) // distinct timestamp, distinct hash
	// Publish the first normally; slip the second directly to a different
	// node, as a targeted attacker would.
	ln.base.ProcessBlock(mbA, -1)
	victim := c.nodes[(leaderID+1)%len(c.nodes)]
	victim.base.ProcessFn(mbB, leaderID)
	return mbA.Hash(), mbB.Hash(), nil
}
