package bitcoinng

import (
	"fmt"
	"time"

	"bitcoinng/internal/chain"
	"bitcoinng/internal/crypto"
	"bitcoinng/internal/invariant"
	"bitcoinng/internal/load"
	"bitcoinng/internal/mempool"
	"bitcoinng/internal/metrics"
	"bitcoinng/internal/mining"
	"bitcoinng/internal/node"
	"bitcoinng/internal/protocol"
	"bitcoinng/internal/sim"
	"bitcoinng/internal/simnet"
	"bitcoinng/internal/store"
	"bitcoinng/internal/strategy"
	"bitcoinng/internal/types"
	"bitcoinng/internal/validate"
	"bitcoinng/internal/wallet"
)

// ClusterConfig describes an interactive in-process network.
//
// Deprecated: prefer New with functional options (WithParams, WithAutoMine,
// WithScenario, ...); NewCluster remains as a thin shim over the same
// assembly path.
type ClusterConfig struct {
	// Protocol selects the client implementation from the protocol
	// registry; default BitcoinNG.
	Protocol Protocol
	// Nodes is the network size (≥ 2).
	Nodes int
	// Seed makes the cluster deterministic.
	Seed int64
	// Params are the consensus parameters; zero value takes DefaultParams.
	Params Params
	// FundPerNode pre-funds every node's wallet with this amount from
	// genesis (spendable immediately).
	FundPerNode Amount
	// AutoMine attaches simulated miners with power following the paper's
	// exponential rank distribution; without it, call Node(i).MineBlock
	// manually.
	AutoMine bool
	// Censors lists node indices that, while leading, publish empty
	// microblocks — the §5.2 "Censorship Resistance" DoS behaviour whose
	// influence ends with the next honest key block.
	Censors []int
	// Strategies assigns registered mining strategies (internal/strategy)
	// by node index; unlisted nodes run honest.
	Strategies map[int]string
	// Scenario, if set, is armed at build time: each step fires at its
	// offset from virtual time zero as Run advances the clock. Use
	// Cluster.Play to run a scenario relative to the current time instead.
	Scenario *Scenario
	// DisableConnectCache turns off the shared connect cache so every node
	// re-validates every block locally; results are identical either way.
	DisableConnectCache bool
	// Invariants, when non-empty, are checked online against every node's
	// chain state every InvariantInterval of virtual time (and on demand via
	// CheckInvariants). Violations accumulate in InvariantViolations.
	Invariants []invariant.Invariant
	// InvariantInterval spaces the online checks; zero takes the key-block
	// interval.
	InvariantInterval time.Duration
	// RelayTxs enables loose-transaction relay on every node (live-network
	// behavior): submitted transactions gossip to peers, batched per
	// Params.TxBatchInterval. Without it only the submitted-to node pools a
	// transaction (the paper's §7 methodology).
	RelayTxs bool
	// StreamLoad, when non-nil, endows genesis with a lane-chained
	// transaction stream (internal/load) so Blast can drive sustained load
	// against the cluster.
	StreamLoad *StreamLoadConfig
	// MempoolLimits bounds every node's mempool (bounded admission with
	// fee-rate eviction); zero keeps pools unbounded.
	MempoolLimits mempool.Limits
	// BandwidthBPS overrides the network model's per-pair bandwidth; zero
	// keeps the paper's 100 kbit/s.
	BandwidthBPS float64
	// StateDir, when set, gives every node a file-backed durable block
	// archive at StateDir/node-<i>.blocks (with its arrival-time sidecar at
	// node-<i>.times), so Crash/Restart recover from real files (and a
	// damaged file recovers its longest valid prefix). Unset, nodes persist
	// to in-memory archives that survive simulated crashes only. Shorthand
	// for StoreURL "file:<StateDir>"; StoreURL wins when both are set.
	StateDir string
	// StoreURL selects every node's storage backend — chain index AND UTXO
	// ledger — via the internal/store locator syntax: "" or "mem:" for the
	// RAM-bound fast path, "file:<dir>" for file backends rooted at dir,
	// "file:" for a throwaway temporary root removed by Close.
	StoreURL string
}

// StreamLoadConfig sizes the cluster's sustained-load stream.
type StreamLoadConfig struct {
	// TxSize is the uniform stream transaction size; zero takes the §7
	// default 476 bytes.
	TxSize int
	// Lanes is the chain parallelism; zero takes load.DefaultLanes.
	Lanes int
	// MaxTxs caps the stream; zero leaves it effectively unbounded.
	MaxTxs int64
}

// Cluster is an interactive emulated network. All methods must be called
// from one goroutine; time only advances inside Run and Play. Cluster
// implements the Scenario Runtime, so scripted steps act on it directly.
type Cluster struct {
	cfg       ClusterConfig
	loop      *sim.Loop
	net       *simnet.Network
	collector *metrics.Collector
	nodes     []*ClusterNode
	genesis   *types.PowBlock
	stream    *load.Stream
	scenErrs  []error

	// Rebuild material for Restart: the same key, censor flag, and connect
	// cache a node was first built with.
	keys    []*crypto.PrivateKey
	censors map[int]bool
	cache   *validate.Cache

	// Storage: the factory that built every node's backends, and the
	// per-node UTXO stores (the chain indexes live on the node handles).
	factory *store.Factory
	utxos   []store.UTXO

	// Online invariant checking (nil unless configured).
	invEng         *invariant.Engine
	partition      []int // current group per node; nil while whole
	lastDisruption int64
}

// ClusterNode is one node handle. Its store is the crash-surviving chain
// index: the write hook (node.BlockArchive), the invariant read surface
// (invariant.DurableStore), body reloads for compacted chains, and
// arrival-time-faithful replay for restart — store.MemIndex or the
// file-backed store.FileIndex, per the cluster's locator.
type ClusterNode struct {
	id          int
	client      protocol.Client
	base        *node.Base
	miner       *mining.Miner
	wallet      *wallet.Wallet
	env         *simnet.NodeEnv
	store       store.ChainIndex
	down        bool
	lastRestart int64
}

// NewCluster builds the network, funds wallets, and (with AutoMine) arms
// miners. Nothing runs until Run is called.
//
// Deprecated: use New with functional options.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("bitcoinng: cluster needs at least 2 nodes")
	}
	if cfg.Protocol == "" {
		cfg.Protocol = BitcoinNG
	}
	if cfg.Params == (Params{}) {
		cfg.Params = DefaultParams()
		cfg.Params.RetargetWindow = 0
	}
	censors, err := protocol.CensorSet(cfg.Nodes, cfg.Censors)
	if err != nil {
		return nil, fmt.Errorf("bitcoinng: %w", err)
	}
	strategies, err := strategy.ForNodes(cfg.Nodes, cfg.Strategies)
	if err != nil {
		return nil, fmt.Errorf("bitcoinng: %w", err)
	}
	locator := cfg.StoreURL
	if locator == "" && cfg.StateDir != "" {
		locator = "file:" + cfg.StateDir
	}
	factory, err := store.NewFactory(locator)
	if err != nil {
		return nil, fmt.Errorf("bitcoinng: %w", err)
	}
	// Chain indexes open before the event loop exists: a process-level
	// restart must start the virtual clock at the latest persisted timestamp
	// — block time or local arrival time, whichever is later (a real node's
	// wall clock keeps running across restarts) — or every freshly mined
	// block would violate median-time-past against the recovered prefix
	// until the clock caught up.
	indexes := make([]store.ChainIndex, 0, cfg.Nodes)
	utxos := make([]store.UTXO, 0, cfg.Nodes)
	abandon := func() { // failed build: release whatever opened, best-effort
		for _, ix := range indexes {
			_ = ix.Close()
		}
		for _, u := range utxos {
			_ = u.Close()
		}
		_ = factory.Close()
	}
	var clockStart int64
	for i := 0; i < cfg.Nodes; i++ {
		index, err := factory.NewChainIndex(clusterStoreName(i))
		if err != nil {
			abandon()
			return nil, fmt.Errorf("bitcoinng: node %d durable store: %w", i, err)
		}
		indexes = append(indexes, index)
		if err := index.Replay(func(b types.Block, receivedAt int64) error {
			if t := b.Time(); t > clockStart {
				clockStart = t
			}
			if receivedAt > clockStart {
				clockStart = receivedAt
			}
			return nil
		}); err != nil {
			abandon()
			return nil, fmt.Errorf("bitcoinng: node %d durable store scan: %w", i, err)
		}
	}
	loop := sim.NewLoop(clockStart)
	netCfg := simnet.DefaultConfig(cfg.Nodes, cfg.Seed)
	if cfg.BandwidthBPS > 0 {
		netCfg.BandwidthBPS = cfg.BandwidthBPS
	}
	network := simnet.New(loop, netCfg)

	// Node keys and pre-funded genesis.
	keys := make([]*crypto.PrivateKey, cfg.Nodes)
	var payouts []types.TxOutput
	for i := range keys {
		k, err := crypto.GenerateKey(sim.NewRand(cfg.Seed, uint64(0x30000+i)))
		if err != nil {
			abandon()
			return nil, err
		}
		keys[i] = k
		if cfg.FundPerNode > 0 {
			payouts = append(payouts, types.TxOutput{Value: cfg.FundPerNode, To: k.Public().Addr()})
		}
	}
	var stream *load.Stream
	streamFirst := uint32(len(payouts))
	if cfg.StreamLoad != nil {
		stream, err = load.NewStream(load.StreamConfig{
			Seed:   cfg.Seed,
			TxSize: cfg.StreamLoad.TxSize,
			Lanes:  cfg.StreamLoad.Lanes,
			MaxTxs: cfg.StreamLoad.MaxTxs,
		})
		if err != nil {
			abandon()
			return nil, fmt.Errorf("bitcoinng: %w", err)
		}
		payouts = append(payouts, stream.GenesisPayouts()...)
	}
	genesis := types.GenesisBlock(types.GenesisSpec{
		Target:  crypto.EasiestTarget,
		Payouts: payouts,
	})
	if stream != nil {
		stream.Bind(genesis.Txs[0].ID(), streamFirst)
	}
	collector := metrics.NewCollector(genesis, 0)

	c := &Cluster{
		cfg:       cfg,
		loop:      loop,
		net:       network,
		collector: collector,
		genesis:   genesis,
		stream:    stream,
		keys:      keys,
		censors:   censors,
		factory:   factory,
	}
	shares := mining.ExponentialShares(cfg.Nodes, mining.DefaultExponent)
	totalRate := 1.0 / cfg.Params.TargetBlockInterval.Seconds()

	cache := validate.Shared()
	if cfg.DisableConnectCache {
		cache = nil
	}
	c.cache = cache
	for i := 0; i < cfg.Nodes; i++ {
		env := simnet.NewNodeEnv(loop, network, i, cfg.Seed)
		// The ledger store starts from scratch on every build: the chain
		// index is the durable truth, and the replay below re-derives UTXO
		// state from it (a possibly-torn ledger journal left by a hard crash
		// is never trusted). Reset must precede Build, because chain.New
		// applies genesis into the store.
		ustore, err := factory.NewUTXO(clusterStoreName(i))
		if err != nil {
			abandon()
			return nil, fmt.Errorf("bitcoinng: node %d ledger store: %w", i, err)
		}
		utxos = append(utxos, ustore)
		if err := ustore.Reset(); err != nil {
			abandon()
			return nil, fmt.Errorf("bitcoinng: node %d ledger store reset: %w", i, err)
		}
		client, err := protocol.Build(env, protocol.Spec{
			Protocol:           protocol.Protocol(cfg.Protocol),
			Params:             cfg.Params,
			Key:                keys[i],
			Genesis:            genesis,
			Recorder:           collector,
			SimulatedMining:    true,
			CensorTransactions: censors[i],
			ConnectCache:       cache,
			Strategy:           strategies[i],
			UTXO:               ustore,
		})
		if err != nil {
			abandon()
			return nil, err
		}
		env.Deliver(client.HandleMessage)
		cn := &ClusterNode{
			id:     i,
			client: client,
			base:   client.Base(),
			wallet: wallet.New(keys[i]),
			env:    env,
			store:  indexes[i],
		}
		cn.base.Persist = cn.store
		// The chain index doubles as the body archive Compact evicts
		// against: every accepted block lands there via Persist first.
		cn.base.State.Store().AttachBodySource(cn.store)
		// A pre-existing file-backed archive (process-level restart) replays
		// its recovered prefix into the fresh chain state — each block under
		// its original arrival time, so the first-seen tie-break resolves as
		// it did in the first life; in-memory archives start empty and this
		// is a no-op.
		replayed := 0
		if err := cn.store.Replay(func(b types.Block, receivedAt int64) error {
			if _, err := cn.base.State.AddBlock(b, receivedAt); err != nil {
				return err
			}
			replayed++
			return nil
		}); err != nil {
			// Every archived block was validated and persisted by this very
			// node in parent-before-child order, so a replay failure means
			// archive corruption or a rules change — not a recoverable skew.
			abandon()
			return nil, fmt.Errorf("bitcoinng: node %d archive replay: %w", i, err)
		}
		if replayed > 0 && cn.base.OnTipChange != nil {
			// Replay bypassed processBlock, so re-arm leadership off the
			// recovered tip (core's hook ignores the AddResult).
			cn.base.OnTipChange(nil)
		}
		cn.base.RelayTxs = cfg.RelayTxs
		if l := cfg.MempoolLimits; l.MaxTxs > 0 || l.MaxBytes > 0 {
			if mp, ok := cn.base.Pool.(*mempool.Pool); ok {
				mp.SetLimits(l)
			}
		}
		cn.miner = mining.NewMiner(loop, sim.NewRand(cfg.Seed, uint64(0x40000+i)),
			func() {
				if !cn.down {
					cn.client.MineBlock()
				}
			})
		if cfg.AutoMine {
			cn.miner.SetRate(shares[i] * totalRate)
			cn.miner.Start()
		}
		c.nodes = append(c.nodes, cn)
	}
	c.utxos = utxos
	if cfg.Scenario != nil {
		c.schedule(cfg.Scenario, nil)
	}
	if len(cfg.Invariants) > 0 {
		c.invEng = invariant.NewEngine(cfg.Invariants...)
		interval := cfg.InvariantInterval
		if interval <= 0 {
			interval = cfg.Params.TargetBlockInterval
		}
		if interval <= 0 {
			interval = time.Second // degenerate params: never re-arm at +0
		}
		var tick func()
		tick = func() {
			c.invEng.Check(c.snapshot(false))
			c.loop.After(interval, tick)
		}
		c.loop.After(interval, tick)
	}
	return c, nil
}

// clusterStoreName labels a node's stores inside the factory root; the chain
// index's block file lands at <root>/node-<i>.blocks, preserving the
// pre-factory StateDir layout on disk.
func clusterStoreName(i int) string { return fmt.Sprintf("node-%d", i) }

// Close releases every node's storage backends, syncing file-backed state so
// a later cluster over the same directory resumes from it, and removes an
// ephemeral "file:" root. The cluster is unusable afterwards. Clusters on
// in-memory stores (the default) need not call it.
func (c *Cluster) Close() error {
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	for _, n := range c.nodes {
		keep(n.store.Close())
	}
	for _, u := range c.utxos {
		keep(u.Sync())
		keep(u.Close())
	}
	keep(c.factory.Close())
	return first
}

// snapshot assembles the invariant engine's view of every node.
func (c *Cluster) snapshot(final bool) *invariant.Snapshot {
	s := &invariant.Snapshot{
		Now:            c.loop.Now(),
		Final:          final,
		Params:         c.cfg.Params,
		Partitioned:    c.partition != nil,
		LastDisruption: c.lastDisruption,
		Nodes:          make([]invariant.NodeState, len(c.nodes)),
	}
	for i, n := range c.nodes {
		group := 0
		if c.partition != nil {
			group = c.partition[i]
		}
		s.Nodes[i] = invariant.NodeState{
			ID:          i,
			Chain:       n.base.State,
			Strategy:    n.StrategyName(),
			Group:       group,
			Down:        n.down,
			LastRestart: n.lastRestart,
			Durable:     n.store,
		}
	}
	return s
}

// CheckInvariants runs the configured invariant catalogue once, as a final
// (full-history) check, and returns every violation recorded so far. It
// returns nil when no invariants were configured.
func (c *Cluster) CheckInvariants() []invariant.Violation {
	if c.invEng == nil {
		return nil
	}
	c.invEng.Check(c.snapshot(true))
	return c.invEng.Violations()
}

// InvariantViolations returns every invariant violation recorded so far
// (periodic ticks plus explicit CheckInvariants calls), deduplicated by
// (invariant, node) in first-observation order.
func (c *Cluster) InvariantViolations() []invariant.Violation {
	if c.invEng == nil {
		return nil
	}
	return c.invEng.Violations()
}

// Run advances virtual time by d, processing everything scheduled within it.
func (c *Cluster) Run(d time.Duration) { c.loop.RunFor(d) }

// Play arms the scenario's steps relative to the current virtual time and
// runs through its last step. It returns the first error from this
// scenario's own steps (failures of a concurrently armed build-time
// scenario surface via ScenarioErrors instead); scheduling is complete when
// Play returns, so later Run calls execute nothing further from it.
func (c *Cluster) Play(s *Scenario) error {
	var first error
	c.schedule(s, func(err error) {
		if first == nil {
			first = err
		}
	})
	c.loop.RunFor(s.Duration())
	return first
}

// ScenarioErrors returns every scenario step failure observed so far, in
// firing order.
func (c *Cluster) ScenarioErrors() []error { return c.scenErrs }

// schedule arms s on the loop; each step failure is recorded in scenErrs
// and, when own is non-nil, reported to it as well.
func (c *Cluster) schedule(s *Scenario, own func(error)) {
	s.Schedule(func(d time.Duration, fn func()) { c.loop.After(d, fn) }, c,
		func(ts TimedStep, err error) {
			wrapped := fmt.Errorf("bitcoinng: scenario step %q at %v: %w", ts.Step.Name, ts.Offset, err)
			c.scenErrs = append(c.scenErrs, wrapped)
			if own != nil {
				own(wrapped)
			}
		})
}

// Partition cuts the network into the given groups of node indices; nodes
// not listed join group 0. Messages across groups are lost until Heal. An
// out-of-range node is an error.
func (c *Cluster) Partition(groups ...[]int) error {
	assignment, err := simnet.PartitionAssignment(len(c.nodes), groups)
	if err != nil {
		return fmt.Errorf("bitcoinng: %w", err)
	}
	c.net.SetPartition(assignment)
	c.partition = assignment
	c.lastDisruption = c.loop.Now()
	return nil
}

// Heal removes the partition; chains reconcile as the next blocks announce.
func (c *Cluster) Heal() {
	c.net.SetPartition(nil)
	c.partition = nil
	c.lastDisruption = c.loop.Now()
}

// SetMiningRate adjusts one node's simulated mining power (blocks/sec) and
// starts its miner; zero pauses it. Part of the Scenario Runtime. An
// out-of-range node is an error.
func (c *Cluster) SetMiningRate(node int, blocksPerSec float64) error {
	if node < 0 || node >= len(c.nodes) {
		return fmt.Errorf("bitcoinng: node %d out of range (cluster size %d)", node, len(c.nodes))
	}
	c.nodes[node].SetMiningRate(blocksPerSec)
	return nil
}

// ScaleLatency sets the absolute factor every link's propagation delay is
// scaled by (the LatencySpike scenario step): calls replace one another
// rather than composing, and 1 restores the configured model. A factor ≤ 0
// is an error.
func (c *Cluster) ScaleLatency(factor float64) error {
	if factor <= 0 {
		return fmt.Errorf("bitcoinng: latency factor %v must be > 0", factor)
	}
	c.net.ScaleLatency(factor)
	c.lastDisruption = c.loop.Now()
	return nil
}

// AdoptStrategy switches one node's mining strategy to the registered name
// (the scenario layer's AdoptStrategy step); "honest" restores protocol
// behaviour and abandons anything the previous strategy was withholding.
func (c *Cluster) AdoptStrategy(node int, name string) error {
	if node < 0 || node >= len(c.nodes) {
		return fmt.Errorf("bitcoinng: node %d out of range (cluster size %d)", node, len(c.nodes))
	}
	if err := protocol.AdoptStrategy(c.nodes[node].client, name); err != nil {
		return fmt.Errorf("bitcoinng: node %d (%s): %w", node, c.cfg.Protocol, err)
	}
	c.lastDisruption = c.loop.Now()
	return nil
}

// Equivocate is the Scenario Runtime form of EquivocateLeader, discarding
// the microblock hashes.
func (c *Cluster) Equivocate(leader int, txA, txB *Transaction) error {
	_, _, err := c.EquivocateLeader(leader, txA, txB)
	return err
}

// Crash tears down one node: its miner stops, every armed timer dies with
// the env generation bump, in-flight and future messages to or from it are
// lost, and the client object is abandoned. Only the durable block archive
// survives for Restart. Crashing an out-of-range or already-down node is an
// error.
func (c *Cluster) Crash(node int) error {
	if node < 0 || node >= len(c.nodes) {
		return fmt.Errorf("bitcoinng: node %d out of range (cluster size %d)", node, len(c.nodes))
	}
	cn := c.nodes[node]
	if cn.down {
		return fmt.Errorf("bitcoinng: node %d is already down", node)
	}
	cn.down = true
	cn.miner.Stop()
	cn.env.Bump()
	c.net.SetNodeDown(node, true)
	c.lastDisruption = c.loop.Now()
	return nil
}

// Restart rebuilds a crashed node: a fresh client on the same env and key,
// the durable archive replayed into its chain state, the network reattached,
// and catch-up sync kicked for whatever it missed while down. The node
// resumes its configured strategy (a mid-run AdoptStrategy does not survive
// a crash). Restarting an out-of-range or running node is an error.
func (c *Cluster) Restart(node int) error {
	if node < 0 || node >= len(c.nodes) {
		return fmt.Errorf("bitcoinng: node %d out of range (cluster size %d)", node, len(c.nodes))
	}
	cn := c.nodes[node]
	if !cn.down {
		return fmt.Errorf("bitcoinng: node %d is not down", node)
	}
	strat, err := strategy.New(c.cfg.Strategies[node])
	if err != nil {
		return fmt.Errorf("bitcoinng: node %d restart: %w", node, err)
	}
	// The ledger store is rebuilt from the chain index: the replay below
	// re-applies every persisted block, so the store must start empty (a
	// possibly-torn ledger journal across the crash is never trusted; the
	// chain index IS the durable truth).
	if err := c.utxos[node].Reset(); err != nil {
		return fmt.Errorf("bitcoinng: node %d restart: reset ledger store: %w", node, err)
	}
	client, err := protocol.Build(cn.env, protocol.Spec{
		Protocol:           protocol.Protocol(c.cfg.Protocol),
		Params:             c.cfg.Params,
		Key:                c.keys[node],
		Genesis:            c.genesis,
		Recorder:           c.collector,
		SimulatedMining:    true,
		CensorTransactions: c.censors[node],
		ConnectCache:       c.cache,
		Strategy:           strat,
		UTXO:               c.utxos[node],
	})
	if err != nil {
		return fmt.Errorf("bitcoinng: node %d restart: %w", node, err)
	}
	base := client.Base()
	base.Persist = cn.store
	base.State.Store().AttachBodySource(cn.store)
	base.RelayTxs = c.cfg.RelayTxs
	if l := c.cfg.MempoolLimits; l.MaxTxs > 0 || l.MaxBytes > 0 {
		if mp, ok := base.Pool.(*mempool.Pool); ok {
			mp.SetLimits(l)
		}
	}
	// Recover the durable prefix directly into the tree — no gossip, no
	// re-persist (the archive already holds these), no metrics double-count.
	// Each block replays under its original arrival time, so the first-seen
	// tie-break resolves exactly as it did before the crash.
	now := c.loop.Now()
	if err := cn.store.Replay(func(b types.Block, receivedAt int64) error {
		_, err := base.State.AddBlock(b, receivedAt)
		return err
	}); err != nil {
		// The archive holds only blocks this node validated and persisted,
		// parent before child, so failure here is corruption, not skew.
		return fmt.Errorf("bitcoinng: node %d restart replay: %w", node, err)
	}
	// Replay bypassed processBlock, so re-arm leadership off the recovered
	// tip (core's hook ignores the AddResult).
	if base.OnTipChange != nil {
		base.OnTipChange(nil)
	}
	cn.client = client
	cn.base = base
	cn.down = false
	cn.lastRestart = now
	cn.env.Deliver(client.HandleMessage)
	c.net.SetNodeDown(node, false)
	cn.miner.Start()
	base.Sync.Start(-1)
	c.lastDisruption = now
	return nil
}

// SetLoss installs network-wide lossy-link fault probabilities (the Lossy
// scenario step): each message is independently dropped, duplicated, or
// delayed with the given probabilities, scaled per directed link by a
// seed-deterministic susceptibility factor. All-zero restores clean links.
func (c *Cluster) SetLoss(drop, duplicate, reorder float64) error {
	for _, p := range []float64{drop, duplicate, reorder} {
		if p < 0 || p > 1 {
			return fmt.Errorf("bitcoinng: loss probability %v outside [0,1]", p)
		}
	}
	c.net.SetLoss(simnet.Loss{Drop: drop, Duplicate: duplicate, Reorder: reorder})
	c.lastDisruption = c.loop.Now()
	return nil
}

// Leader returns the index of the first running node that considers itself
// the current epoch leader, or -1 when none does (including protocols
// without a leader role).
func (c *Cluster) Leader() int {
	for _, cn := range c.nodes {
		if cn.down {
			continue
		}
		if cn.IsLeader() {
			return cn.id
		}
	}
	return -1
}

// Now returns the current virtual time.
func (c *Cluster) Now() time.Duration { return time.Duration(c.loop.Now()) }

// Size returns the number of nodes.
func (c *Cluster) Size() int { return len(c.nodes) }

// Node returns the i'th node handle.
func (c *Cluster) Node(i int) *ClusterNode { return c.nodes[i] }

// Report computes the §6 metrics for everything observed so far.
func (c *Cluster) Report() *Report {
	return c.collector.Analyze(metrics.DefaultAnalyzeOptions(c.loop.Now()))
}

// NetStats merges the emulated network's counters — volume, partition and
// crash losses, and the lossy-link fault totals — into one network-wide
// view. Call it between Run slices, while the loops are quiescent.
func (c *Cluster) NetStats() simnet.Stats { return c.net.Stats() }

// Stream exposes the sustained-load stream (nil unless StreamLoad was
// configured).
func (c *Cluster) Stream() *load.Stream { return c.stream }

// BlastConfig parameterizes one Cluster.Blast run.
type BlastConfig struct {
	// Mode defaults to open loop when Rate > 0, closed loop otherwise.
	Mode load.Mode
	// Rate is the open-loop offered rate, tx/s of virtual time.
	Rate float64
	// Window is the closed-loop outstanding-transaction target.
	Window int64
	// Duration is how long to sustain the load (virtual time).
	Duration time.Duration
	// Grace lets the tail confirm after injection stops; zero takes 30 s.
	Grace time.Duration
	// Targets are the node indices transactions are submitted to; empty
	// submits to node 0 (relay spreads them when RelayTxs is on).
	Targets []int
	// Slice is the injection granularity; zero takes one second of virtual
	// time per tick.
	Slice time.Duration
}

// Blast sustains transaction load against the cluster: each virtual-time
// slice it submits everything the pacing discipline says is due, then lets
// the network and miners run. It returns the offered/confirmed/latency
// report measured on node 0's final main chain. Requires StreamLoad.
//
// Confirmation feedback (closed-loop pacing, release floor) refreshes every
// few slices by walking node 0's chain, so the closed-loop window is
// enforced at that granularity — between refreshes the driver errs on the
// conservative side.
func (c *Cluster) Blast(cfg BlastConfig) (*load.Report, error) {
	if c.stream == nil {
		return nil, fmt.Errorf("bitcoinng: Blast needs ClusterConfig.StreamLoad")
	}
	blaster := load.NewBlaster(c.stream, load.BlasterConfig{
		Mode:   cfg.Mode,
		Rate:   cfg.Rate,
		Window: cfg.Window,
	})
	targets := cfg.Targets
	if len(targets) == 0 {
		targets = []int{0}
	}
	for _, t := range targets {
		if t < 0 || t >= len(c.nodes) {
			return nil, fmt.Errorf("bitcoinng: blast target %d out of range (cluster size %d)", t, len(c.nodes))
		}
	}
	slice := cfg.Slice
	if slice <= 0 {
		slice = time.Second
	}
	grace := cfg.Grace
	if grace <= 0 {
		grace = 30 * time.Second
	}
	txSize := 476
	if c.cfg.StreamLoad.TxSize > 0 {
		txSize = c.cfg.StreamLoad.TxSize
	}
	// Reorg slack for the release floor, as in the experiment harness: keep
	// a few blockfuls of confirmed history resubmittable.
	slack := int64(4 * (c.cfg.Params.MaxBlockSize/txSize + 1))

	submit := func(tx *types.Transaction) bool {
		admitted := false
		for _, t := range targets {
			if c.nodes[t].base.SubmitTx(tx) == nil {
				admitted = true
			}
		}
		return admitted
	}
	start := c.loop.Now()
	deadline := start + int64(cfg.Duration)
	var confirmed int64
	for tick := 0; c.loop.Now() < deadline; tick++ {
		if tick%16 == 0 {
			confs := load.Confirmations(c.nodes[0].base.State.Tip())
			confirmed = int64(len(confs))
			blaster.ReleaseBehind(confirmedPrefix(confs), slack)
		}
		blaster.Tick(c.loop.Now(), confirmed, submit)
		c.loop.RunFor(slice)
	}
	c.loop.RunFor(grace)
	confs := load.Confirmations(c.nodes[0].base.State.Tip())
	return blaster.Report(time.Duration(c.loop.Now()-start), confs), nil
}

// confirmedPrefix returns the first stream index not yet confirmed, given
// the sorted confirmation list.
func confirmedPrefix(confs []load.Confirmation) int64 {
	var p int64
	for _, cf := range confs {
		if cf.Index != p {
			break
		}
		p++
	}
	return p
}

// Converged reports whether every node's tip lies on one chain: under
// Bitcoin-NG a leader always has microblocks in flight, so agreement means
// every tip is an ancestor of (or equal to) the farthest tip, not that all
// tips are identical.
func (c *Cluster) Converged() bool {
	// Find the highest tip and verify the others sit on its chain; down
	// nodes' frozen states don't count against agreement.
	var best *ClusterNode
	for _, n := range c.nodes {
		if n.down {
			continue
		}
		if best == nil || n.base.State.Tip().Height > best.base.State.Tip().Height {
			best = n
		}
	}
	if best == nil {
		return true // everything down: vacuously agreed
	}
	bestState := best.base.State
	for _, n := range c.nodes {
		if n.down {
			continue
		}
		tipNode, ok := bestState.Store().Get(n.base.State.Tip().Hash())
		if !ok || !bestState.MainChainContains(tipNode) {
			return false
		}
	}
	return true
}

// ID returns the node's index.
func (n *ClusterNode) ID() int { return n.id }

// Client returns the node's protocol client; assert the protocol package's
// capability interfaces on it for protocol-specific control.
func (n *ClusterNode) Client() ProtocolClient { return n.client }

// Wallet returns the node's wallet.
func (n *ClusterNode) Wallet() *wallet.Wallet { return n.wallet }

// Address returns the node's reward/wallet address.
func (n *ClusterNode) Address() Address { return n.wallet.Address() }

// Chain returns the node's chain state (read-only use).
func (n *ClusterNode) Chain() *chain.State { return n.base.State }

// Height returns the node's main-chain height (all blocks).
func (n *ClusterNode) Height() uint64 { return n.base.State.Height() }

// KeyHeight returns the node's PoW/key-block height.
func (n *ClusterNode) KeyHeight() uint64 { return n.base.State.KeyHeight() }

// TipID returns the node's main-chain tip hash.
func (n *ClusterNode) TipID() Hash { return n.base.State.Tip().Hash() }

// Balance returns addr's spendable balance in this node's view.
func (n *ClusterNode) Balance(addr Address) Amount {
	return n.base.State.UTXO().BalanceOf(addr)
}

// Pay builds, signs, and submits a payment from this node's wallet to the
// node's local pool (experiment clusters do not relay transactions; every
// node that should serialize it must receive it via SubmitTx).
func (n *ClusterNode) Pay(to Address, amount, fee Amount) (*Transaction, error) {
	tx, err := n.wallet.Pay(n.base.State, to, amount, fee)
	if err != nil {
		return nil, err
	}
	if err := n.base.SubmitTx(tx); err != nil {
		return nil, err
	}
	return tx, nil
}

// SubmitTx adds an externally built transaction to this node's pool.
func (n *ClusterNode) SubmitTx(tx *Transaction) error { return n.base.SubmitTx(tx) }

// IsLeader reports whether this node currently leads (protocols without
// leadership always report false).
func (n *ClusterNode) IsLeader() bool {
	l, ok := n.client.(protocol.Leader)
	return ok && l.IsLeader()
}

// MineBlock forces one block find now — a key block under Bitcoin-NG, a
// regular block otherwise — and returns it.
func (n *ClusterNode) MineBlock() types.Block { return n.client.MineBlock() }

// SetMiningRate adjusts the node's simulated mining power (blocks/sec) and
// starts the miner; zero pauses it — the churn experiments use this (§5.2).
func (n *ClusterNode) SetMiningRate(blocksPerSec float64) {
	n.miner.SetRate(blocksPerSec)
	n.miner.Start()
}

// MicroblocksMined returns the node's microblock production count (zero for
// protocols without microblocks).
func (n *ClusterNode) MicroblocksMined() uint64 {
	if p, ok := n.client.(protocol.MicroblockProducer); ok {
		return p.MicroblocksMined()
	}
	return 0
}

// StrategyName returns the node's active mining strategy name; "honest" for
// protocols without strategic freedom.
func (n *ClusterNode) StrategyName() string {
	if s, ok := n.client.(protocol.Strategic); ok {
		return s.StrategyName()
	}
	return "honest"
}

// FraudsDetected returns how many leader equivocations this node has
// witnessed and holds poison evidence for (§4.5); zero for protocols
// without fraud proofs.
func (n *ClusterNode) FraudsDetected() int {
	if w, ok := n.client.(protocol.FraudWitness); ok {
		return w.FraudsDetected()
	}
	return 0
}

// EquivocateLeader makes the given node — which must currently lead — sign
// two conflicting microblocks on its tip, each carrying one of the
// transactions, and publish them to different peers: the split-brain
// double-spend of §4.5. It returns the two microblock hashes. Honest nodes
// that see both detect the fraud and poison the leader once they lead.
func (c *Cluster) EquivocateLeader(leaderID int, txA, txB *Transaction) (Hash, Hash, error) {
	if leaderID < 0 || leaderID >= len(c.nodes) {
		return Hash{}, Hash{}, fmt.Errorf("bitcoinng: node %d out of range (cluster size %d)", leaderID, len(c.nodes))
	}
	if c.nodes[leaderID].down {
		return Hash{}, Hash{}, fmt.Errorf("bitcoinng: node %d is down", leaderID)
	}
	leader := c.nodes[leaderID]
	victim := c.nodes[protocol.EquivocationVictim(leaderID, len(c.nodes))]
	mbA, mbB, err := protocol.PublishEquivocation(leaderID, leader.client, victim.client, txA, txB)
	if err != nil {
		return Hash{}, Hash{}, fmt.Errorf("bitcoinng: node %d (%s): %w", leaderID, c.cfg.Protocol, err)
	}
	return mbA.Hash(), mbB.Hash(), nil
}
