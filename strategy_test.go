package bitcoinng

import (
	"errors"
	"strings"
	"testing"
	"time"

	"bitcoinng/internal/core"
)

// strategyParams is a fast scripted-cluster configuration for the
// mining-strategy tests: quick microblocks, no retargeting, manual mining.
func strategyParams() Params {
	params := DefaultParams()
	params.RetargetWindow = 0
	params.TargetBlockInterval = 30 * time.Second
	params.MicroblockInterval = 2 * time.Second
	return params
}

// TestFeeThiefRejectedNetworkWide: a leader claiming the previous leader's
// 40% fee share produces key blocks no honest validator connects — the fee
// split is consensus, not a convention.
func TestFeeThiefRejectedNetworkWide(t *testing.T) {
	c, err := New(5,
		WithSeed(3),
		WithParams(strategyParams()),
		WithFunding(100_000),
		WithAutoMine(false),
		WithStrategy(0, "feethief"),
	)
	if err != nil {
		t.Fatal(err)
	}
	thief, honest := c.Node(0), c.Node(1)
	if got := thief.StrategyName(); got != "feethief" {
		t.Fatalf("strategy name %q", got)
	}

	// An honest leader serializes a fee-paying transaction.
	honest.MineBlock()
	c.Run(time.Second)
	if !honest.IsLeader() {
		t.Fatal("node 1 does not lead")
	}
	if _, err := honest.Pay(Address{0xcc}, 50_000, 1_000); err != nil {
		t.Fatal(err)
	}
	c.Run(5 * time.Second) // microblocks serialize the payment
	heightBefore := honest.KeyHeight()

	// The thief mines the next key block, stealing the epoch's whole fee
	// pot. Its own validator rejects the block too (the strategy bends
	// production, never validation), so the chain does not move anywhere.
	blk := thief.MineBlock()
	c.Run(10 * time.Second)
	for i := 0; i < c.Size(); i++ {
		if h := c.Node(i).KeyHeight(); h != heightBefore {
			t.Errorf("node %d key height %d, want %d (thief block connected?)",
				i, h, heightBefore)
		}
	}

	// Direct verdict: replaying the thief's block into an honest validator
	// fails with the fee-split rule.
	_, err = honest.Chain().AddBlock(blk, int64(c.Now()))
	if !errors.Is(err, core.ErrFeeSplitShort) {
		t.Fatalf("honest verdict = %v, want ErrFeeSplitShort", err)
	}

	// The thief's influence ends there: an honest key block moves the
	// chain past the stolen epoch.
	honest.MineBlock()
	c.Run(10 * time.Second)
	if honest.KeyHeight() != heightBefore+1 {
		t.Fatalf("honest recovery: key height %d, want %d", honest.KeyHeight(), heightBefore+1)
	}
}

// TestGreedyMineIgnoresMicroblocks: the greedy miner's key block extends the
// epoch's key block directly, pruning the incumbent leader's microblocks;
// because microblocks carry no weight, the network still adopts it.
func TestGreedyMineIgnoresMicroblocks(t *testing.T) {
	c, err := New(5,
		WithSeed(3),
		WithParams(strategyParams()),
		WithFunding(100_000),
		WithAutoMine(false),
		WithStrategy(0, "greedymine"),
	)
	if err != nil {
		t.Fatal(err)
	}
	greedy, honest := c.Node(0), c.Node(1)

	honest.MineBlock()
	c.Run(time.Second)
	const fee = 1_000
	tx, err := honest.Pay(Address{0xcc}, 50_000, fee)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(6 * time.Second)
	microTip := honest.Chain().Tip()
	if microTip.Height <= microTip.KeyHeight {
		t.Fatal("no microblocks to ignore")
	}
	keyAncestor := microTip.KeyAncestor

	blk := greedy.MineBlock()
	if blk.PrevHash() != keyAncestor.Hash() {
		t.Fatalf("greedy parent %s, want the epoch key block %s",
			blk.PrevHash().Short(), keyAncestor.Hash().Short())
	}
	c.Run(10 * time.Second)

	// Every node reorgs onto the greedy block: the incumbent's microblocks
	// are pruned, their fee split never settled, and the transactions
	// return to the pools — where the attacker, now leader, re-serializes
	// them into its own epoch.
	for i := 0; i < c.Size(); i++ {
		tip := c.Node(i).Chain().Tip()
		if tip.KeyAncestor.Hash() != blk.Hash() {
			t.Errorf("node %d tip epoch %s, want the greedy block %s",
				i, tip.KeyAncestor.Hash().Short(), blk.Hash().Short())
		}
	}
	var payEpoch Hash
	for _, n := range honest.Chain().MainChain() {
		for _, txx := range n.Block().Transactions() {
			if txx.ID() == tx.ID() {
				payEpoch = n.KeyAncestor.Hash()
			}
		}
	}
	if payEpoch != blk.Hash() {
		t.Fatalf("payment serialized in epoch %s, want the attacker's %s",
			payEpoch.Short(), blk.Hash().Short())
	}

	// The fee split of the re-serialized epoch settles to the attacker:
	// the next honest key block pays greedy the 40% serializer share the
	// pruned leader would otherwise have earned.
	next := c.Node(2).MineBlock()
	wantShare := Amount(float64(fee) * DefaultParams().LeaderFeeFrac)
	var paid Amount
	for _, out := range next.Transactions()[0].Outputs {
		if out.To == greedy.Address() {
			paid += out.Value
		}
	}
	if paid != wantShare {
		t.Errorf("attacker's serializer share %d, want %d", paid, wantShare)
	}
}

// TestSelfishWithholdsAndReleases: the selfish miner keeps its key block
// private until the honest chain matches it, then releases and wins the race
// by finding the next block on its own branch.
func TestSelfishWithholdsAndReleases(t *testing.T) {
	c, err := New(5,
		WithSeed(3),
		WithParams(strategyParams()),
		WithAutoMine(false),
		WithStrategy(0, "selfish"),
	)
	if err != nil {
		t.Fatal(err)
	}
	selfish, honest := c.Node(0), c.Node(1)

	// The withheld block never reaches the network...
	withheld := selfish.MineBlock()
	c.Run(10 * time.Second)
	if selfish.KeyHeight() != 1 {
		t.Fatalf("attacker key height %d, want 1 (mining on its private block)", selfish.KeyHeight())
	}
	for i := 1; i < c.Size(); i++ {
		if h := c.Node(i).KeyHeight(); h != 0 {
			t.Fatalf("node %d saw the withheld block (key height %d)", i, h)
		}
	}

	// ...until an honest block matches its weight: the attacker releases
	// and the network races between the two equal branches.
	honest.MineBlock()
	c.Run(10 * time.Second)
	seenWithheld := false
	for i := 1; i < c.Size(); i++ {
		if c.Node(i).Chain().HasBlock(withheld.Hash()) {
			seenWithheld = true
		}
	}
	if !seenWithheld {
		t.Fatal("withheld block was not released at the race point")
	}

	// Winning find: published instantly, the whole network converges on
	// the attacker's branch.
	win := selfish.MineBlock()
	c.Run(10 * time.Second)
	for i := 0; i < c.Size(); i++ {
		tip := c.Node(i).Chain().Tip()
		if tip.KeyAncestor.Hash() != win.Hash() {
			t.Errorf("node %d tip epoch %s, want the attacker's winning block %s",
				i, tip.KeyAncestor.Hash().Short(), win.Hash().Short())
		}
		if c.Node(i).KeyHeight() != 2 {
			t.Errorf("node %d key height %d, want 2", i, c.Node(i).KeyHeight())
		}
	}
}

// TestAdoptStrategyScenarioStep switches a node's strategy mid-run through
// the scenario API and verifies unknown names surface as step errors.
func TestAdoptStrategyScenarioStep(t *testing.T) {
	c, err := New(4,
		WithSeed(3),
		WithParams(strategyParams()),
		WithAutoMine(false),
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Node(2).StrategyName(); got != "honest" {
		t.Fatalf("default strategy %q", got)
	}
	if err := c.Play(NewScenario(
		At(time.Second, AdoptStrategy(2, "greedymine")),
	)); err != nil {
		t.Fatal(err)
	}
	if got := c.Node(2).StrategyName(); got != "greedymine" {
		t.Fatalf("strategy after adopt %q", got)
	}
	// Switching back restores honest behaviour.
	if err := c.AdoptStrategy(2, "honest"); err != nil {
		t.Fatal(err)
	}
	if got := c.Node(2).StrategyName(); got != "honest" {
		t.Fatalf("strategy after restore %q", got)
	}

	// Unknown names and bad indices are step errors, not panics.
	if err := c.Play(NewScenario(
		At(time.Second, AdoptStrategy(2, "nope")),
	)); err == nil || !strings.Contains(err.Error(), "unknown strategy") {
		t.Errorf("unknown strategy step error = %v", err)
	}
	if err := c.Play(NewScenario(
		At(time.Second, AdoptStrategy(99, "honest")),
	)); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("out-of-range step error = %v", err)
	}
}

// TestWithStrategyValidation rejects bad build-time assignments.
func TestWithStrategyValidation(t *testing.T) {
	if _, err := New(3, WithAutoMine(false), WithStrategy(0, "nope")); err == nil {
		t.Error("unknown strategy accepted at build time")
	}
	if _, err := New(3, WithAutoMine(false), WithStrategy(7, "honest")); err == nil {
		t.Error("out-of-range strategy node accepted at build time")
	}
}
