// Package bitcoinng is a from-scratch Go implementation of Bitcoin-NG
// (Eyal, Gencer, Sirer, van Renesse — NSDI 2016): a blockchain protocol that
// decouples leader election (proof-of-work key blocks) from transaction
// serialization (leader-signed microblocks), together with everything needed
// to reproduce the paper's evaluation — a Bitcoin baseline, a GHOST
// baseline, a 1000-node-capable network emulator, simulated mining, the
// paper's Nakamoto-consensus metrics, and figure-regenerating sweep drivers.
//
// This root package is the public API surface. It offers three entry points:
//
//   - Experiments: Run one measured execution (RunExperiment on a config
//     from NewExperiment) or a whole figure sweep (Figure7, Figure8a,
//     Figure8b) on the discrete-event emulated network, and read back the
//     §6 metrics in a Report.
//
//   - Clusters: New builds an interactive in-process network of protocol
//     nodes on the emulator — drive virtual time, submit transactions from
//     wallets, watch leadership and chains move. The examples/ directory is
//     built on this.
//
//   - Live nodes: the cmd/ngnode binary runs the same protocol code over
//     real TCP with real proof-of-work at configurable difficulty.
//
// Two abstractions compose across all three: the protocol registry
// (RegisterProtocol — every harness assembles nodes through it, so a new
// protocol variant plugs in without touching them) and the Scenario API
// (NewScenario/At — scripted partitions, churn, and attacks that run on
// any harness's event loop).
//
// See DESIGN.md for the architecture and the experiment index.
package bitcoinng

import (
	"time"

	"bitcoinng/internal/crypto"
	"bitcoinng/internal/experiment"
	"bitcoinng/internal/metrics"
	"bitcoinng/internal/protocol"
	"bitcoinng/internal/stats"
	"bitcoinng/internal/types"
)

// Protocol selects a consensus protocol implementation by its registered
// name (see RegisterProtocol).
type Protocol = protocol.Protocol

// The protocols this repository implements.
const (
	// Bitcoin is the baseline Nakamoto blockchain (§3 of the paper).
	Bitcoin = protocol.Bitcoin
	// BitcoinNG is the paper's contribution (§4): key blocks elect
	// leaders, microblocks serialize transactions.
	BitcoinNG = protocol.BitcoinNG
	// GHOST is the heaviest-subtree baseline discussed in §9.
	GHOST = protocol.GHOST
)

// Frequently used value types, re-exported for the public API.
type (
	// Params are consensus parameters (block sizes, intervals, fee split).
	Params = types.Params
	// Amount is a currency quantity in base units.
	Amount = types.Amount
	// Address receives payments.
	Address = crypto.Address
	// Hash identifies blocks and transactions.
	Hash = crypto.Hash
	// Transaction is a ledger entry.
	Transaction = types.Transaction
	// Block is a chain block of any kind (PoW, key, micro).
	Block = types.Block
	// Report carries the §6 metrics for one run.
	Report = metrics.Report
	// Fit is a least-squares line with R² (Figure 6/7 checks).
	Fit = stats.Fit
)

// DefaultParams returns the paper-faithful consensus parameters: 40%/60%
// fee split, 5% poison reward, 100-block coinbase maturity, 100-second key
// blocks, 10-second microblocks.
func DefaultParams() Params { return types.DefaultParams() }

// ExperimentConfig configures one measured run; see the field docs in
// internal/experiment.
type ExperimentConfig = experiment.Config

// ExperimentResult is a run's outputs: the metric report plus simulation
// accounting.
type ExperimentResult = experiment.Result

// DefaultExperiment returns a paper-faithful experiment configuration at the
// given scale.
func DefaultExperiment(p Protocol, nodes int, seed int64) ExperimentConfig {
	return experiment.DefaultConfig(p, nodes, seed)
}

// RunExperiment executes one measured run on the emulated network.
func RunExperiment(cfg ExperimentConfig) (*ExperimentResult, error) {
	return experiment.Run(cfg)
}

// Scale sets sweep dimensions (nodes, blocks per run, seed).
type Scale = experiment.Scale

// LaptopScale is the default benchmark scale; PaperScale matches the
// paper's 1000-node, 100-block executions.
func LaptopScale() Scale { return experiment.DefaultScale() }

// PaperScale returns the paper's testbed dimensions.
func PaperScale() Scale { return experiment.PaperScale() }

// Figure sweep drivers; each regenerates one evaluation figure.
type (
	// Fig7Point is a propagation-latency measurement at one block size.
	Fig7Point = experiment.Fig7Point
	// Fig8Point holds both protocols' reports at one sweep coordinate.
	Fig8Point = experiment.Fig8Point
)

// Figure7 regenerates the propagation-vs-block-size experiment.
func Figure7(scale Scale, sizes []int) ([]Fig7Point, Fit, error) {
	return experiment.Figure7(scale, sizes)
}

// Figure8a regenerates the block-frequency sweep (§8.1).
func Figure8a(scale Scale, freqs []float64) ([]Fig8Point, error) {
	return experiment.Figure8a(scale, freqs)
}

// Figure8b regenerates the block-size sweep (§8.2).
func Figure8b(scale Scale, sizes []int) ([]Fig8Point, error) {
	return experiment.Figure8b(scale, sizes)
}

// TieBreakAblation compares random vs first-seen tie-breaking (DESIGN.md §5).
func TieBreakAblation(scale Scale) (random, firstSeen *Report, err error) {
	return experiment.TieBreakAblation(scale)
}

// KeyBlockIntervalAblation sweeps the Bitcoin-NG key-block interval.
func KeyBlockIntervalAblation(scale Scale, intervals []time.Duration) ([]Fig8Point, error) {
	return experiment.KeyBlockIntervalAblation(scale, intervals)
}
