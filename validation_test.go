package bitcoinng

import (
	"strings"
	"testing"
	"time"

	"bitcoinng/internal/experiment"
)

// adversarialExperiment is a deliberately messy same-seed configuration:
// censoring leaders, an equivocation attempt, a partition cycle, and a
// latency spike, all against the Bitcoin-NG pipeline. It is the workload the
// connect-cache determinism guarantee is checked on.
func adversarialExperiment(t *testing.T, cacheOn bool) *ExperimentResult {
	t.Helper()
	params := DefaultParams()
	params.RetargetWindow = 0
	params.TargetBlockInterval = 30 * time.Second
	params.MicroblockInterval = 5 * time.Second
	params.MaxBlockSize = 20_000

	cfg := NewExperiment(16,
		WithSeed(21),
		WithParams(params),
		WithTargetBlocks(12),
		WithCensors(3, 5),
		WithConnectCache(cacheOn),
		WithScenario(NewScenario(
			At(40*time.Second, Equivocate(0, nil, nil)),
			At(time.Minute, Partition([]int{0, 1, 2, 3})),
			At(90*time.Second, Heal()),
			At(2*time.Minute, LatencySpike(3)),
			At(150*time.Second, LatencySpike(1)),
		)),
	)
	res, err := RunExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestConnectCacheDeterminism is the acceptance check of ISSUE 2: a
// same-seed run must produce a byte-identical experiment report whether the
// shared connect cache is on or off — memoization is a pure optimization,
// invisible in every measured output.
func TestConnectCacheDeterminism(t *testing.T) {
	render := func(res *ExperimentResult) string {
		var b strings.Builder
		experiment.FprintReport(&b, "determinism", res.Report)
		return b.String()
	}
	cached := adversarialExperiment(t, true)
	uncached := adversarialExperiment(t, false)

	if got, want := render(cached), render(uncached); got != want {
		t.Fatalf("cache on/off reports diverged:\n--- cache on ---\n%s\n--- cache off ---\n%s", got, want)
	}
	if cached.Events != uncached.Events {
		t.Fatalf("event counts diverged: %d vs %d", cached.Events, uncached.Events)
	}
	if cached.NetStats != uncached.NetStats {
		t.Fatalf("network stats diverged: %+v vs %+v", cached.NetStats, uncached.NetStats)
	}
	if len(cached.ScenarioErrors) != len(uncached.ScenarioErrors) {
		t.Fatalf("scenario errors diverged: %v vs %v", cached.ScenarioErrors, uncached.ScenarioErrors)
	}
	// And a second cached run (now served almost entirely from the shared
	// cache populated above) still matches.
	again := adversarialExperiment(t, true)
	if render(again) != render(cached) {
		t.Fatal("re-running against a warm shared cache changed the report")
	}
}

// TestConnectCacheIsolationAcrossParams runs two same-seed clusters whose
// consensus parameters differ while sharing the process-wide cache: each
// must behave exactly as it does alone (fingerprints keep their verdict
// universes apart), and the divergent subsidy shows up in their chains.
func TestConnectCacheIsolationAcrossParams(t *testing.T) {
	run := func(subsidy Amount) (Hash, uint64) {
		params := DefaultParams()
		params.RetargetWindow = 0
		params.TargetBlockInterval = 20 * time.Second
		params.MicroblockInterval = 2 * time.Second
		params.Subsidy = subsidy
		c, err := New(8, WithSeed(5), WithParams(params), WithFunding(1000))
		if err != nil {
			t.Fatal(err)
		}
		c.Run(3 * time.Minute)
		if !c.Converged() {
			t.Fatalf("cluster (subsidy %d) did not converge", subsidy)
		}
		return c.Node(0).TipID(), c.Node(0).Height()
	}

	// Interleave: A, B (different rules), then A again against the now-warm
	// cache. The third run must reproduce the first bit for bit.
	tipA1, heightA1 := run(50 * 100_000_000)
	tipB, _ := run(25 * 100_000_000)
	tipA2, heightA2 := run(50 * 100_000_000)

	if tipA1 != tipA2 || heightA1 != heightA2 {
		t.Fatalf("same-rules rerun diverged: %s/%d vs %s/%d", tipA1.Short(), heightA1, tipA2.Short(), heightA2)
	}
	if tipA1 == tipB {
		t.Fatal("different subsidies produced identical chains — fingerprint isolation broken")
	}
}

// parallelExperiment is adversarialExperiment with an explicit engine
// parallelism, exercising WithParallelism through the public API.
func parallelExperiment(t *testing.T, parallelism int) *ExperimentResult {
	t.Helper()
	params := DefaultParams()
	params.RetargetWindow = 0
	params.TargetBlockInterval = 30 * time.Second
	params.MicroblockInterval = 5 * time.Second
	params.MaxBlockSize = 20_000

	cfg := NewExperiment(16,
		WithSeed(21),
		WithParams(params),
		WithTargetBlocks(12),
		WithCensors(3, 5),
		WithParallelism(parallelism),
		WithScenario(NewScenario(
			At(40*time.Second, Equivocate(0, nil, nil)),
			At(time.Minute, Partition([]int{0, 1, 2, 3})),
			At(90*time.Second, Heal()),
			At(2*time.Minute, LatencySpike(3)),
			At(150*time.Second, LatencySpike(1)),
		)),
	)
	res, err := RunExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestParallelismDeterminism is the acceptance check of ISSUE 3 at the
// public API: the same adversarial seed must produce a byte-identical
// report on the sequential loop and on the sharded engine.
func TestParallelismDeterminism(t *testing.T) {
	render := func(res *ExperimentResult) string {
		var b strings.Builder
		experiment.FprintReport(&b, "determinism", res.Report)
		return b.String()
	}
	seq := parallelExperiment(t, 1)
	for _, par := range []int{2, 4} {
		sharded := parallelExperiment(t, par)
		if got, want := render(sharded), render(seq); got != want {
			t.Fatalf("parallelism %d diverged:\n--- sequential ---\n%s\n--- sharded ---\n%s", par, want, got)
		}
		if sharded.Events != seq.Events {
			t.Fatalf("parallelism %d event counts diverged: %d vs %d", par, sharded.Events, seq.Events)
		}
		if sharded.NetStats != seq.NetStats {
			t.Fatalf("parallelism %d network stats diverged: %+v vs %+v", par, sharded.NetStats, seq.NetStats)
		}
	}
}
