package bitcoinng

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"bitcoinng/internal/bitcoin"
	"bitcoinng/internal/node"
	"bitcoinng/internal/protocol"
	"bitcoinng/internal/types"
)

// countingClient is a custom protocol registration: Bitcoin's consensus
// rules with instrumented block production — the shape an attack variant
// (e.g. a Greedy-Mine client) takes. It plugs into every harness through
// the registry alone.
type countingClient struct {
	*bitcoin.Node
	mined int
}

func (c *countingClient) Base() *node.Base { return c.Node.Base }

func (c *countingClient) MineBlock() types.Block {
	c.mined++
	return c.Node.MineBlock()
}

// The registry is process-global with no unregistration, so the test
// protocol registers once even across -count=N reruns.
var (
	countingOnce  sync.Once
	countingErr   error
	countingBuilt []*countingClient
)

const countingProtocol Protocol = "test-counting"

func registerCountingProtocol(t *testing.T) {
	t.Helper()
	countingOnce.Do(func() {
		countingErr = RegisterProtocol(countingProtocol, ProtocolRegistration{
			Payload: types.KindPow,
			New: func(env node.Env, spec ProtocolSpec) (ProtocolClient, error) {
				n, err := bitcoin.New(env, bitcoin.Config{
					Params:          spec.Params,
					Key:             spec.Key,
					Genesis:         spec.Genesis,
					Recorder:        spec.Recorder,
					SimulatedMining: spec.SimulatedMining,
				})
				if err != nil {
					return nil, err
				}
				c := &countingClient{Node: n}
				countingBuilt = append(countingBuilt, c)
				return c, nil
			},
		})
	})
	if countingErr != nil {
		t.Fatal(countingErr)
	}
}

// TestCustomProtocolRunsUnderBothHarnesses registers a new protocol and
// runs it, without any harness changes, under NewCluster and RunExperiment.
func TestCustomProtocolRunsUnderBothHarnesses(t *testing.T) {
	registerCountingProtocol(t)
	start := len(countingBuilt)

	params := DefaultParams()
	params.RetargetWindow = 0
	params.TargetBlockInterval = 20 * time.Second
	c, err := New(4, WithProtocol(countingProtocol), WithSeed(3), WithParams(params))
	if err != nil {
		t.Fatal(err)
	}
	c.Run(3 * time.Minute)
	if c.Node(0).Height() == 0 {
		t.Error("cluster: custom protocol produced no blocks")
	}
	if c.Node(0).IsLeader() {
		t.Error("cluster: leadership capability invented for a leaderless protocol")
	}
	clusterMined := 0
	for _, cc := range countingBuilt[start : start+4] {
		clusterMined += cc.mined
	}
	if clusterMined == 0 {
		t.Error("cluster: mining never went through the custom client")
	}

	cfg := NewExperiment(4, WithProtocol(countingProtocol), WithSeed(1), WithTargetBlocks(5))
	cfg.Params.MaxBlockSize = 20_000
	cfg.Params.TargetBlockInterval = 20 * time.Second
	res, err := RunExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Blocks == 0 {
		t.Error("experiment: custom protocol produced no blocks")
	}
	if len(countingBuilt) != start+8 {
		t.Errorf("built %d nodes through the custom constructor, want %d", len(countingBuilt)-start, 8)
	}
}

// TestUnknownProtocolSharedError asserts both harnesses reject an
// unregistered protocol with the registry's one shared error.
func TestUnknownProtocolSharedError(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{Protocol: "no-such-protocol", Nodes: 2}); !errors.Is(err, ErrUnknownProtocol) {
		t.Errorf("NewCluster error = %v, want ErrUnknownProtocol", err)
	}
	if _, err := New(2, WithProtocol("no-such-protocol")); !errors.Is(err, ErrUnknownProtocol) {
		t.Errorf("New error = %v, want ErrUnknownProtocol", err)
	}
	if _, err := RunExperiment(DefaultExperiment("no-such-protocol", 2, 1)); !errors.Is(err, ErrUnknownProtocol) {
		t.Errorf("RunExperiment error = %v, want ErrUnknownProtocol", err)
	}
	// The message names what is available.
	_, err := New(2, WithProtocol("no-such-protocol"))
	for _, want := range []string{`"no-such-protocol"`, string(Bitcoin), string(BitcoinNG), string(GHOST)} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %s", err, want)
		}
	}
}

// TestDuplicateRegistrationRejected covers the registry's collision path.
func TestDuplicateRegistrationRejected(t *testing.T) {
	if err := RegisterProtocol(BitcoinNG, ProtocolRegistration{
		Payload: types.KindMicro,
		New: func(env node.Env, spec ProtocolSpec) (ProtocolClient, error) {
			return nil, nil
		},
	}); err == nil {
		t.Fatal("re-registering bitcoin-ng succeeded")
	}
	if err := protocol.Register("", ProtocolRegistration{}); err == nil {
		t.Fatal("registering an empty name succeeded")
	}
}

// TestWithCensors drives the §5.2 censorship behaviour through the public
// API: a censoring leader serializes no transactions, and the payment only
// confirms once an honest node takes over leadership.
func TestWithCensors(t *testing.T) {
	params := DefaultParams()
	params.RetargetWindow = 0
	params.TargetBlockInterval = 20 * time.Second
	params.MicroblockInterval = 2 * time.Second
	c, err := New(4,
		WithSeed(11),
		WithParams(params),
		WithFunding(10_000),
		WithAutoMine(false),
		WithCensors(0),
	)
	if err != nil {
		t.Fatal(err)
	}
	dest := Address{0xce}
	tx, err := c.Node(1).Pay(dest, 2_500, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < c.Size(); i++ {
		if i != 1 {
			if err := c.Node(i).SubmitTx(tx); err != nil {
				t.Fatalf("node %d rejected tx: %v", i, err)
			}
		}
	}
	c.Node(0).MineBlock() // the censor leads
	c.Run(30 * time.Second)
	if got := c.Node(1).Balance(dest); got != 0 {
		t.Fatalf("censoring leader confirmed the payment: dest balance %d", got)
	}
	c.Node(1).MineBlock() // an honest leader takes over
	c.Run(30 * time.Second)
	if got := c.Node(1).Balance(dest); got != 2_500 {
		t.Fatalf("honest leader did not confirm the payment: dest balance %d", got)
	}

	// An out-of-range censor index is rejected at build time, not silently
	// ignored — under both harnesses.
	if _, err := New(4, WithCensors(4)); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("New(4, WithCensors(4)) error = %v, want out-of-range rejection", err)
	}
	if _, err := RunExperiment(NewExperiment(4, WithCensors(9))); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("NewExperiment censor error = %v, want out-of-range rejection", err)
	}
}

// TestExperimentWithCensors measures §5.2 censorship in a run: with every
// node censoring, microblocks are produced but serialize no transactions.
func TestExperimentWithCensors(t *testing.T) {
	cfg := NewExperiment(4, WithSeed(5), WithTargetBlocks(8), WithCensors(0, 1, 2, 3))
	cfg.Params.MaxBlockSize = 20_000
	res, err := RunExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Blocks == 0 {
		t.Fatal("censoring network produced no blocks")
	}
	if res.Report.TxFrequency != 0 {
		t.Errorf("censoring leaders serialized transactions: tx/s = %v", res.Report.TxFrequency)
	}
}

// TestExperimentScenarioBeyondMaxSimTime asserts a scenario that outlives
// the run is rejected up front instead of silently truncated.
func TestExperimentScenarioBeyondMaxSimTime(t *testing.T) {
	cfg := NewExperiment(2, WithScenario(NewScenario(At(7*time.Hour, Heal()))))
	if _, err := RunExperiment(cfg); err == nil || !strings.Contains(err.Error(), "MaxSimTime") {
		t.Fatalf("err = %v, want MaxSimTime validation error", err)
	}
}

// TestExperimentScenario runs a partition/heal script inside a measured
// experiment: the third harness-independent scenario consumer.
func TestExperimentScenario(t *testing.T) {
	params := DefaultParams()
	params.RetargetWindow = 0
	params.TargetBlockInterval = 20 * time.Second
	params.MicroblockInterval = 2 * time.Second
	params.MaxBlockSize = 20_000
	cfg := NewExperiment(6,
		WithSeed(2),
		WithParams(params),
		WithTargetBlocks(10),
		WithScenario(NewScenario(
			At(30*time.Second, Partition([]int{0, 1, 2}, []int{3, 4, 5})),
			At(90*time.Second, Heal()),
			At(100*time.Second, LatencySpike(3)),
			At(110*time.Second, LatencySpike(1)),
		)),
	)
	res, err := RunExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, serr := range res.ScenarioErrors {
		t.Errorf("scenario step failed: %v", serr)
	}
	if res.NetStats.MessagesLost == 0 {
		t.Error("partition dropped no messages — the scenario did not execute")
	}
	if res.SimTime < 110*time.Second {
		t.Errorf("run stopped at %v, before the scenario's last step", res.SimTime)
	}
}
